// Package errwrap is the fixture for the error-hygiene analyzer:
// discarded error returns and %v/%s-flattened errors at the resilience
// classification boundary. The test adds this package to
// rules.ErrWrapPaths so the wrap rule is in force.
package errwrap

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

var errUpstream = errors.New("upstream overloaded")

func failing() error            { return errUpstream }
func pair() (int, error)        { return 0, errUpstream }
func writeTo(w io.Writer) error { _, err := w.Write([]byte("x")); return err }

// --- rule 1: discarded error returns ------------------------------------

func discards(w io.Writer) {
	failing()      // want `call discards its error result`
	pair()         // want `call discards its error result`
	writeTo(w)     // want `call discards its error result`
	io.WriteString(w, "x") // want `call discards its error result`
}

// clean: handled, explicitly discarded, deferred, printed to terminal.
func handled(w io.Writer, f *os.File) error {
	if err := failing(); err != nil {
		return err
	}
	_ = failing()
	_, _ = pair()
	defer f.Close()
	fmt.Println("terminal printing is exempt")
	var b strings.Builder
	fmt.Fprintf(&b, "in-memory writers are exempt")
	fmt.Fprintf(os.Stderr, "process streams are exempt")
	return nil
}

// flagged: writes to a real file can fail meaningfully.
func fileWrite(f *os.File) {
	fmt.Fprintf(f, "results: %d\n", 42) // want `call discards its error result`
}

// suppressed.
func allowedDiscard() {
	failing() //paslint:allow errwrap fixture: result recorded elsewhere
}

// --- rule 2: wrapping across the classification boundary ----------------

func flattens(err error) error {
	return fmt.Errorf("augment failed: %v", err) // want `error formatted with %v loses its classification`
}

func flattensString(err error) error {
	return fmt.Errorf("augment failed: %s", err) // want `error formatted with %s loses its classification`
}

// clean: %w preserves Unwrap for Classify.
func wraps(err error) error {
	return fmt.Errorf("augment failed: %w", err)
}

// clean: non-error args may use any verb.
func describes(name string, n int) error {
	return fmt.Errorf("backend %s rejected %d prompts", name, n)
}

// suppressed: deliberate flattening at an API edge.
func allowedFlatten(err error) error {
	return fmt.Errorf("public message: %v", err) //paslint:allow errwrap fixture: identity must not leak to clients
}
