// Package httpbody is the fixture for the HTTP hygiene analyzer:
// unclosed response bodies on the client side, WriteHeader ordering on
// the server side.
package httpbody

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// --- rule 1: response bodies --------------------------------------------

func leaks(c *http.Client) (int, error) {
	resp, err := c.Get("http://example.invalid") // want `response body of resp is never closed`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func closes(c *http.Client) (int, error) {
	resp, err := c.Get("http://example.invalid")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

func closesInline(c *http.Client) error {
	resp, err := c.Get("http://example.invalid")
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// clean: the response escapes to the caller, who owns the close.
func escapesReturn(c *http.Client) (*http.Response, error) {
	resp, err := c.Get("http://example.invalid")
	return resp, err
}

// clean: the response is handed to another function.
func escapesArg(c *http.Client, sink func(*http.Response)) error {
	resp, err := c.Get("http://example.invalid")
	if err != nil {
		return err
	}
	sink(resp)
	return nil
}

// suppressed.
func allowedLeak(c *http.Client) {
	resp, _ := c.Get("http://example.invalid") //paslint:allow httpbody fixture: process exits immediately after
	_ = resp
}

// --- rule 2: WriteHeader ordering ---------------------------------------

func headerAfterWrite(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "hello")
	w.WriteHeader(http.StatusTeapot) // want `WriteHeader after the response body was written`
}

func headerAfterEncode(w http.ResponseWriter, r *http.Request) {
	_ = json.NewEncoder(w).Encode(map[string]string{"ok": "true"})
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader after the response body was written`
}

func duplicateHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	w.WriteHeader(http.StatusOK) // want `duplicate WriteHeader`
}

// clean: status first, then the body.
func ordered(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write([]byte(`{"ok":true}`))
}

// clean: exclusive branches each write once.
func branches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// suppressed.
func allowedLate(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "partial")
	w.WriteHeader(http.StatusOK) //paslint:allow httpbody fixture: trailer-style no-op retained for wire compatibility
}
