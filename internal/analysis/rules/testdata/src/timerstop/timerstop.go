// Package timerstop is the fixture for the timer/ticker lifecycle
// analyzer: time.Tick, time.After in loops, and unstopped locals.
package timerstop

import (
	"context"
	"time"
)

// --- flagged: time.Tick is a permanent leak ------------------------------

func tickLeak(work func()) {
	for range time.Tick(time.Second) { // want `time\.Tick leaks its ticker forever`
		work()
	}
}

// --- flagged: time.After in a loop ---------------------------------------

func afterInLoop(ctx context.Context, jobs chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second): // want `time\.After in a loop allocates an un-stoppable timer per iteration`
		case j := <-jobs:
			_ = j
		}
	}
}

// --- flagged: not stopped on every return path ---------------------------

func earlyReturnLeak(d time.Duration, skip bool) {
	t := time.NewTimer(d)
	if skip {
		return // want `t from time\.NewTimer is not stopped on this return path`
	}
	<-t.C
	t.Stop()
}

func neverStopped(d time.Duration) {
	tk := time.NewTicker(d)
	<-tk.C
} // want `tk from time\.NewTicker is not stopped on this return path`

// --- clean ---------------------------------------------------------------

func deferredStop(d time.Duration, skip bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	if skip {
		return
	}
	<-t.C
}

// clean: time.After outside a loop is one timer, not one per iteration.
func singleAfter(d time.Duration) {
	<-time.After(d)
}

// clean: the timer escapes; its receiver owns Stop.
type pacer struct {
	t *time.Timer
}

func newPacer(d time.Duration) *pacer {
	t := time.NewTimer(d)
	return &pacer{t: t}
}

// clean: returned directly.
func makeTimer(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// clean: a callback defined inside the loop does not multiply the
// timer per iteration.
func afterInCallback(ds []time.Duration) []func() {
	var fns []func()
	for range ds {
		fns = append(fns, func() {
			<-time.After(time.Millisecond)
		})
	}
	return fns
}

// --- suppressed ----------------------------------------------------------

func allowedAfter(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Minute): //paslint:allow timerstop fixture: fires once a minute, the garbage is negligible
		}
	}
}
