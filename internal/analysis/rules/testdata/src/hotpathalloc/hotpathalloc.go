// Package hotpathalloc is the fixture for the hot-path allocation
// analyzer: //paslint:hotpath-marked functions must not allocate.
package hotpathalloc

import (
	"fmt"
	"strconv"
	"time"
)

type entry struct {
	key string
	val []byte
	at  time.Time
}

type cache struct {
	m   map[string]*entry
	now func() time.Time
}

// --- flagged: allocation-prone constructs in a marked function ----------

//paslint:hotpath fixture: cache-hit path budget is one map lookup
func (c *cache) Get(key string) ([]byte, bool) {
	e, ok := c.m[key]
	if !ok {
		miss := fmt.Sprintf("miss:%s", key) // want `fmt\.Sprintf allocates on a hotpath function`
		_ = miss
		return nil, false
	}
	e.at = time.Now() // want `time\.Now on a hotpath function`
	return e.val, true
}

//paslint:hotpath fixture: key construction runs once per request
func makeKey(tenant string, id []byte) string {
	return tenant + ":" + string(id) // want `string<->bytes conversion copies on a hotpath function`
}

var audit []*entry

//paslint:hotpath fixture: must not grow the audit trail per hit
func recordHit(key string) {
	audit = append(audit, &entry{key: key}) // want `escaping composite literal allocates on a hotpath function`
}

// --- clean: unmarked functions allocate freely ---------------------------
// (A marker that matches no function is its own finding; see the
// hotpathstale fixture, driven through the runner directly because
// that diagnostic lands on the directive's own line.)

func (c *cache) GetSlow(key string) ([]byte, bool) {
	e, ok := c.m[key]
	if !ok {
		_ = fmt.Sprintf("miss:%s", key)
		return nil, false
	}
	e.at = time.Now()
	return e.val, true
}

// clean: marked but allocation-free — strconv, injected clock, local
// scratch that never escapes.
//
//paslint:hotpath fixture: the disciplined version of the hit path
func (c *cache) GetLean(key string) ([]byte, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	e.at = c.now()
	return e.val, true
}

//paslint:hotpath fixture: integer rendering without fmt
func renderStatus(code int) string {
	return "status=" + strconv.Itoa(code)
}

//paslint:hotpath fixture: local scratch slices stay on the stack
func sumWindow(vs []int) int {
	window := []int{0, 0, 0}
	total := 0
	for i, v := range vs {
		window[i%3] = v
		total += v
	}
	return total
}

// --- suppressed ----------------------------------------------------------

//paslint:hotpath fixture: one deliberate allocation, accounted for
func annotate(key string) string {
	return fmt.Sprintf("hot:%s", key) //paslint:allow hotpathalloc fixture: startup-only call despite the marker, measured at 0.1% of hits
}
