// Package atomicmix is the fixture for the atomic-consistency
// analyzer: a variable must be all-atomic or all-mutex, never both.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu    sync.Mutex
	hits  int64 // accessed via sync/atomic everywhere
	burst int64 // accessed atomically in Add, plainly in Reset: flagged
	plain int64 // never atomic: free to use under mu
}

func (c *counters) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) Burst() {
	atomic.AddInt64(&c.burst, 1)
}

// --- flagged: plain access to an atomically-shared field -----------------

func (c *counters) Reset() {
	c.burst = 0 // want `burst is accessed atomically at .* but plainly here`
}

func (c *counters) Skewed() int64 {
	return c.burst // want `burst is accessed atomically at .* but plainly here`
}

// --- clean: consistent discipline ----------------------------------------

func (c *counters) ResetHits() {
	atomic.StoreInt64(&c.hits, 0)
}

func (c *counters) PlainUnderMu() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plain++
	return c.plain
}

// clean: the struct literal names the fields without accessing them.
func fresh() *counters {
	return &counters{hits: 0, burst: 0, plain: 0}
}

// package-level atomic flag, consistently atomic.
var ready int32

func markReady()    { atomic.StoreInt32(&ready, 1) }
func isReady() bool { return atomic.LoadInt32(&ready) == 1 }

// --- suppressed ----------------------------------------------------------

func (c *counters) allowedRead() int64 {
	return c.burst //paslint:allow atomicmix fixture: single-goroutine snapshot during shutdown, racy read is acceptable
}
