// Package ctxpropagate is the fixture for the context-propagation
// analyzer: fresh roots inside context-receiving functions, and
// internal callers of the module's context-less chat shims.
package ctxpropagate

import (
	"context"
	"net/http"
)

// Chatter mirrors the module's context-less interface; its methods are
// module-defined, so rule 2 polices calls to them.
type Chatter interface {
	Chat(prompt string) (string, error)
}

// Client mirrors chatapi.Client's shim pair.
type Client struct{}

func (c *Client) ChatCompletion(req string) (string, error) {
	return c.ChatCompletionContext(context.Background(), req) //paslint:allow ctxpropagate the deprecated wrapper itself is the one legitimate caller
}

func (c *Client) ChatCompletionContext(ctx context.Context, req string) (string, error) {
	_ = ctx
	return req, nil
}

// --- rule 1: fresh roots under an in-scope context ----------------------

func freshRoot(ctx context.Context, c *Client) (string, error) {
	_ = ctx
	bg := context.Background() // want `context\.Background inside a function that already receives`
	return c.ChatCompletionContext(bg, "hi")
}

func freshTODO(ctx context.Context) error {
	_ = ctx
	todo := context.TODO() // want `context\.TODO inside a function that already receives`
	return todo.Err()
}

// clean: no context parameter, Background is the legitimate root.
func topLevel(c *Client) (string, error) {
	return c.ChatCompletionContext(context.Background(), "hi")
}

// --- rule 2: context-less shim calls ------------------------------------

func shimUnderCtx(ctx context.Context, ch Chatter) (string, error) {
	_ = ctx
	return ch.Chat("hello") // want `context-less Chat call drops the in-scope context`
}

func shimInHandler(w http.ResponseWriter, r *http.Request, c *Client) {
	out, _ := c.ChatCompletion("hello") // want `context-less ChatCompletion call drops the in-scope context`
	_, _ = w.Write([]byte(out))
}

func shimNoCtx(ch Chatter) (string, error) {
	return ch.Chat("hello") // want `internal caller of deprecated context-less shim`
}

// suppressed: adapters are the one legitimate caller.
type adapter struct{ ch Chatter }

func (a adapter) ChatContext(ctx context.Context, prompt string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return a.ch.Chat(prompt) //paslint:allow ctxpropagate fixture adapter lifts a plain Chatter by design
}
