// Package determinism is the fixture for the determinism analyzer. The
// test widens rules.DeterministicPaths to include this package, so the
// in-scope checks fire here exactly as they would in internal/simllm.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// --- flagged: wall clock -------------------------------------------------

func clockRead() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

// --- flagged: global rand source ----------------------------------------

func globalRand() int {
	return rand.Intn(10) // want `package-level math/rand source`
}

func globalFloat() float64 {
	return rand.Float64() // want `package-level math/rand source`
}

// --- clean: seeded source -----------------------------------------------

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// --- flagged everywhere: clock-seeded source ----------------------------

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand source seeded from the clock` `time\.Now in deterministic package`
}

// --- map iteration ------------------------------------------------------

func mapReturn(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad %s: %d", k, v) // want `return inside map iteration`
		}
	}
	return nil
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
	}
	return keys
}

// clean: the collect-then-sort idiom.
func mapAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `write inside map iteration`
	}
	return b.String()
}

// clean: order-independent reduction over a map is fine.
func mapSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// --- suppressed ---------------------------------------------------------

// The directive must silence the finding; no want comment here.
func allowedClock() int64 {
	//paslint:allow determinism fixture proves the escape hatch works
	return time.Now().UnixNano()
}

func allowedEOL() int {
	return rand.Intn(3) //paslint:allow determinism fixture proves same-line suppression
}
