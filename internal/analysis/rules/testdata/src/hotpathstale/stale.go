// Package hotpathstale holds exactly one finding: a hotpath marker
// separated from any function declaration. Checked by a direct runner
// test in hotpathalloc_test.go, not by want comments — the diagnostic
// lands on the directive's own line, where no want comment can sit.
package hotpathstale

//paslint:hotpath the function this marked was inlined into its caller

var relocated = true

func elsewhere() int { return 1 }
