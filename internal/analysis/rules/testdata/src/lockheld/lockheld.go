// Package lockheld is the fixture for the lock-discipline analyzer:
// slow or blocking operations while a sync mutex is held.
package lockheld

import (
	"net/http"
	"sync"
)

type Chatter interface {
	Chat(prompt string) (string, error)
}

type service struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	state  string
	ch     chan string
	model  Chatter
	client *http.Client
}

// --- flagged: upstream call under the lock ------------------------------

func (s *service) chatUnderLock(prompt string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Chat(prompt) // want `Chatter call Chat while holding s\.mu`
}

func (s *service) httpUnderLock() (*http.Response, error) {
	s.mu.Lock()
	resp, err := s.client.Get("http://example.invalid") // want `HTTP round-trip Get while holding s\.mu`
	s.mu.Unlock()
	return resp, err
}

func (s *service) pkgHTTPUnderRLock() (*http.Response, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return http.Get("http://example.invalid") // want `HTTP round-trip http\.Get while holding s\.rw`
}

func (s *service) sendUnderLock(v string) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func (s *service) selectSendUnderLock(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // want `channel send while holding s\.mu`
	default:
	}
}

// --- clean: release before the slow call --------------------------------

func (s *service) snapshotThenChat(prompt string) (string, error) {
	s.mu.Lock()
	state := s.state
	s.mu.Unlock()
	return s.model.Chat(prompt + state)
}

// clean: branch that unlocks before calling.
func (s *service) unlockInBranch(prompt string, cached bool) (string, error) {
	s.mu.Lock()
	if cached {
		v := s.state
		s.mu.Unlock()
		_, err := s.model.Chat(v)
		return v, err
	}
	s.mu.Unlock()
	return s.model.Chat(prompt)
}

// clean: the goroutine body runs outside the critical section.
func (s *service) goUnderLock(prompt string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = s.model.Chat(prompt)
		s.ch <- prompt
	}()
	s.state = prompt
}

// --- suppressed ---------------------------------------------------------

func (s *service) allowedSend(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v //paslint:allow lockheld fixture: buffered handoff channel, send cannot block
}
