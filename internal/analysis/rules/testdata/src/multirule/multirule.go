// Package multirule exercises several analyzers over one file: two
// rules firing on the same line, and an allow directive that silences
// exactly the rule it names while the other keeps reporting.
package multirule

import (
	"fmt"
	"sync/atomic"
)

type stats struct {
	hits int64
}

func (s *stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

// --- both rules fire on one line -----------------------------------------

//paslint:hotpath fixture: rendered once per request on the hit path
func (s *stats) render() string {
	return fmt.Sprintf("hits=%d", s.hits) // want `atomicmix::hits is accessed atomically` `hotpathalloc::fmt\.Sprintf allocates on a hotpath function`
}

// --- the allow silences atomicmix only; hotpathalloc still reports -------

//paslint:hotpath fixture: same shape, one finding waived
func (s *stats) renderAllowed() string {
	//paslint:allow atomicmix fixture: shutdown-time display read, a racy value is acceptable
	return fmt.Sprintf("hits=%d", s.hits) // want `hotpathalloc::fmt\.Sprintf allocates on a hotpath function`
}

// --- clean under both ----------------------------------------------------

func (s *stats) snapshot() int64 {
	return atomic.LoadInt64(&s.hits)
}
