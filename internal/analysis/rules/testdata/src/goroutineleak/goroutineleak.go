// Package goroutineleak is the fixture for the goroutine-lifecycle
// analyzer: unbounded loops with no cancellation path and discarded
// context cancel functions.
package goroutineleak

import (
	"context"
	"time"
)

type worker struct {
	stop chan struct{}
	jobs chan int
}

// --- flagged: loops that nothing can stop --------------------------------

func (w *worker) spinForever() {
	go func() { // want `goroutine loops forever with no way to observe cancellation`
		n := 0
		for {
			n++
		}
	}()
}

func (w *worker) sleepForever() {
	go func() { // want `goroutine loops forever with no way to observe cancellation`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// --- flagged: discarded cancel -------------------------------------------

func discardedCancel(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `context\.WithCancel cancel function discarded`
	return ctx
}

func discardedTimeout(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `context\.WithTimeout cancel function discarded`
	return ctx
}

// --- clean: every loop can observe shutdown ------------------------------

func (w *worker) selectLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

func (w *worker) stopChanLoop() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			default:
			}
		}
	}()
}

func (w *worker) rangeLoop() {
	go func() {
		for j := range w.jobs { // range over a channel ends when it closes
			_ = j
		}
	}()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// clean: the wait is delegated to a ctx-taking helper with an exit.
func (w *worker) delegatedLoop(ctx context.Context) {
	go func() {
		for {
			if err := sleepCtx(ctx, time.Second); err != nil {
				return
			}
		}
	}()
}

// clean: cancel kept and deferred.
func keptCancel(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

// clean: bounded loop needs no cancellation path.
func (w *worker) boundedLoop() {
	go func() {
		for i := 0; i < 10; i++ {
			w.jobs <- i
		}
	}()
}

// --- suppressed ----------------------------------------------------------

func (w *worker) allowedSpin() {
	go func() { //paslint:allow goroutineleak fixture: process-lifetime pump, dies with the process by design
		for {
			w.jobs <- 0
		}
	}()
}
