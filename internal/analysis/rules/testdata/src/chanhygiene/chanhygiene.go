// Package chanhygiene is the fixture for the channel-ownership
// analyzer: single closing owner, no send-after-close, no bare sends
// in request handlers.
package chanhygiene

import (
	"context"
	"net/http"
)

// --- flagged: two functions close the same channel -----------------------

type broker struct {
	done chan struct{}
	out  chan int
}

func (b *broker) shutdown() {
	close(b.done) // want `done is closed in 2 different functions`
}

func (b *broker) abort() {
	close(b.done) // want `done is closed in 2 different functions`
}

// --- flagged: send after close on the same path --------------------------

func flushAndClose(ch chan int, vs []int) {
	for _, v := range vs {
		ch <- v
	}
	close(ch)
	ch <- 0 // want `send on ch after close\(ch\) on this path`
}

// --- flagged: bare send in a request handler -----------------------------

type server struct {
	queue chan string
}

func (s *server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	s.queue <- r.URL.Path // want `blocking channel send in a request handler`
	w.WriteHeader(http.StatusAccepted)
}

// --- clean ---------------------------------------------------------------

// clean: one closing owner; the other side only signals through it.
func (b *broker) produce(vs []int) {
	for _, v := range vs {
		b.out <- v
	}
	close(b.out)
}

// clean: close in one branch, send in the sibling branch — different
// paths.
func branchedClose(ch chan int, done bool) {
	if done {
		close(ch)
	} else {
		ch <- 1
	}
}

// clean: handler sends through a select with an escape hatch.
func (s *server) handleEnqueueSafe(w http.ResponseWriter, r *http.Request) {
	select {
	case s.queue <- r.URL.Path:
		w.WriteHeader(http.StatusAccepted)
	case <-r.Context().Done():
		http.Error(w, "client went away", http.StatusRequestTimeout)
	default:
		http.Error(w, "queue full", http.StatusServiceUnavailable)
	}
}

// clean: the goroutine a handler spawns may block; the handler does
// not.
func (s *server) handleAsync(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	go func(ctx context.Context) {
		select {
		case s.queue <- path:
		case <-ctx.Done():
		}
	}(context.WithoutCancel(r.Context()))
	w.WriteHeader(http.StatusAccepted)
}

// clean: non-handler functions may block on sends; lockheld and
// goroutineleak police their context.
func pump(ch chan int, vs []int) {
	for _, v := range vs {
		ch <- v
	}
}

// --- suppressed ----------------------------------------------------------

func (s *server) handleAllowed(w http.ResponseWriter, r *http.Request) {
	s.queue <- r.URL.Path //paslint:allow chanhygiene fixture: queue is buffered at connection-limit capacity, send cannot block
	w.WriteHeader(http.StatusOK)
}
