package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Determinism enforces seed-reproducibility in the simulation packages
// and bans clock-seeded randomness module-wide.
//
// Inside DeterministicPaths it flags:
//   - time.Now (wall-clock reads make outputs run-dependent),
//   - the package-level math/rand source (rand.Intn, rand.Float64, ...;
//     a seeded rand.New(rand.NewSource(seed)) passes),
//   - ranging over a map when the iteration order can reach an output:
//     appending to an outer slice (unless the slice is sorted
//     afterwards in the same block), writing/printing inside the loop,
//     or returning a value derived from the loop variables.
//
// Everywhere it flags seeding a rand source from the clock
// (rand.NewSource(time.Now().UnixNano()) and friends): clock seeds are
// the canonical way nondeterminism sneaks back into a "seeded" system.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global rand, and order-dependent map iteration in packages that must be bit-deterministic under a seed",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	inScope := pathInScope(pass.Path, DeterministicPaths)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, v)
				if isPkgFunc(fn, "math/rand", "NewSource") || isPkgFunc(fn, "math/rand/v2", "NewPCG", "NewChaCha8") {
					if tn := findTimeNow(pass.Info, v); tn != nil {
						pass.Reportf(tn.Pos(), "rand source seeded from the clock; inject the seed so runs are reproducible")
						return true
					}
				}
				if !inScope {
					return true
				}
				if isPkgFunc(fn, "time", "Now") {
					pass.Reportf(v.Pos(), "time.Now in deterministic package %s; outputs must depend only on inputs and the seed", pass.Path)
				}
				if globalRandFunc(fn) {
					pass.Reportf(v.Pos(), "package-level math/rand source (%s.%s) in deterministic package; use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			case *ast.RangeStmt:
				if inScope {
					checkMapRange(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// findTimeNow returns the first time.Now call in the argument subtree.
func findTimeNow(info *types.Info, call *ast.CallExpr) ast.Node {
	var found ast.Node
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				if isPkgFunc(calleeFunc(info, c), "time", "Now") {
					found = c
					return false
				}
			}
			return true
		})
	}
	return found
}

// globalRandFunc reports whether fn is a math/rand package-level
// function that draws from the shared global source. Constructors are
// exempt: rand.New/NewSource/NewZipf build explicit, seedable sources.
func globalRandFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // methods on *rand.Rand are seeded by construction
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// checkMapRange flags map iterations whose order can leak into output.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Collect the loop variables; order-dependence means their values
	// reach an order-sensitive sink.
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				loopVars[obj] = true // "=" range form
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			if usesAny(pass.Info, v, loopVars) {
				pass.Reportf(v.Pos(), "return inside map iteration depends on nondeterministic key order; iterate a sorted key slice")
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
					continue // shadowed append, not the builtin
				}
				if i >= len(v.Lhs) {
					continue
				}
				target, ok := v.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[target]
				if obj == nil {
					obj = pass.Info.Defs[target]
				}
				if obj == nil || loopVars[obj] {
					continue
				}
				if sortedAfter(pass, rs, obj) {
					continue
				}
				pass.Reportf(v.Pos(), "append to %s inside map iteration produces nondeterministic order; sort %s afterwards or iterate sorted keys", target.Name, target.Name)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, v); fn != nil {
				name := fn.Name()
				pkg := ""
				if fn.Pkg() != nil {
					pkg = fn.Pkg().Path()
				}
				isWrite := name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"
				isPrint := pkg == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint" || name == "Printf" || name == "Println" || name == "Print")
				if isWrite || isPrint {
					pass.Reportf(v.Pos(), "write inside map iteration emits keys in nondeterministic order; iterate a sorted key slice")
				}
			}
		}
		return true
	})
}

// usesAny reports whether the subtree references any of the objects.
func usesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call in a statement that follows rs inside the same enclosing block —
// the collect-then-sort idiom that makes map iteration deterministic.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, obj types.Object) bool {
	for _, f := range pass.Files {
		sorted := false
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok || sorted {
				return !sorted
			}
			idx := -1
			for i, st := range block.List {
				if st == rs || containsNode(st, rs) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return true
			}
			for _, st := range block.List[idx+1:] {
				call, ok := stmtCall(st)
				if !ok {
					continue
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					continue
				}
				p := fn.Pkg().Path()
				if p != "sort" && p != "slices" {
					continue
				}
				for _, arg := range call.Args {
					argUses := map[types.Object]bool{obj: true}
					if usesAny(pass.Info, arg, argUses) {
						sorted = true
						return false
					}
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// containsNode reports whether tree contains target.
func containsNode(tree, target ast.Node) bool {
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// stmtCall unwraps a statement to a direct call expression.
func stmtCall(st ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}
