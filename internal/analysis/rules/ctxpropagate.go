package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CtxPropagate enforces context plumbing through the serving stack:
//
//  1. A function that receives a context.Context must not mint a fresh
//     root with context.Background() or context.TODO() — that silently
//     detaches the callee from the caller's deadline and cancellation.
//  2. Outside package main, calls to the module's context-less chat
//     shims (Chat, ChatCompletion, Enhance, Augment) are flagged: the
//     Context variants exist precisely so deadlines survive the
//     serving/proxy hot path. The deprecated wrappers stay for external
//     API compatibility, but no internal caller may use them.
//
// Rule 2 only fires on methods *defined in this module* so unrelated
// third-party-shaped names never trip it, and it skips the wrapper
// methods themselves (a shim's own body is the one legitimate caller of
// the pattern it deprecates — those carry //paslint:allow directives).
var CtxPropagate = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "flag context.Background inside context-receiving functions and internal callers of the deprecated context-less chat shims",
	Run:  runCtxPropagate,
}

// contextlessShims are the method names rule 2 polices. Each has a
// <name>Context counterpart; Augment deliberately is not listed — it is
// the primary synchronous API, not a deprecated wrapper.
var contextlessShims = map[string]bool{
	"Chat":           true,
	"ChatCompletion": true,
	"Enhance":        true,
}

func runCtxPropagate(pass *analysis.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		var ftype *ast.FuncType
		if decl != nil {
			ftype = decl.Type
		} else {
			ftype = lit.Type
		}
		hasCtx := hasParamOfType(pass.Info, ftype, isContextType)
		hasReq := hasParamOfType(pass.Info, ftype, isHTTPRequestPtr)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != lit {
				return false // nested literals get their own visit
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if hasCtx && isPkgFunc(fn, "context", "Background", "TODO") {
				pass.Reportf(call.Pos(), "context.%s inside a function that already receives a context.Context; pass the caller's context through", fn.Name())
			}
			if !isMain && moduleShimCall(pass, fn) {
				hint := "use the " + fn.Name() + "Context variant"
				if fn.Name() == "Chat" {
					hint = "use ChatContext (pas.AsChatterCtx adapts plain Chatters)"
				}
				if hasCtx || hasReq {
					pass.Reportf(call.Pos(), "context-less %s call drops the in-scope context; %s", fn.Name(), hint)
				} else {
					pass.Reportf(call.Pos(), "internal caller of deprecated context-less shim %s.%s; %s", recvName(fn), fn.Name(), hint)
				}
			}
			return true
		})
	})
	return nil
}

// moduleShimCall reports whether fn is a context-less chat-family
// method defined inside this module (concrete or interface method).
func moduleShimCall(pass *analysis.Pass, fn *types.Func) bool {
	if !contextlessShims[fn.Name()] {
		return false
	}
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != pass.Module && !strings.HasPrefix(p, pass.Module+"/") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func recvName(fn *types.Func) string {
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok && iface != nil {
			return "interface"
		}
	}
	return "?"
}

// hasParamOfType reports whether any parameter's type satisfies pred.
func hasParamOfType(info *types.Info, ftype *ast.FuncType, pred func(types.Type) bool) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if pred(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamedType(p, "net/http", "Request")
}
