package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("goroutineleak"), GoroutineLeak)
}
