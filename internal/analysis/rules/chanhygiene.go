package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/lite"
)

// ChanHygiene enforces the channel ownership rules the serving tier
// lives by:
//
//   - close from one owner: a channel closed in more than one function
//     is a panic with a scheduling dependency — whichever close loses
//     the race takes the process down. One function owns the close;
//     everyone else signals through it.
//   - no send after close on a path: `close(ch)` followed by `ch <- v`
//     on the same control-flow path is the same panic without needing
//     a second goroutine.
//   - no bare blocking send in request handlers: a handler that does
//     `ch <- v` outside a select parks the request goroutine (and its
//     connection, and its file descriptor) on a consumer that may be
//     wedged. Handlers send via select with ctx.Done()/default so
//     back-pressure turns into 503s, not connection pileup.
//
// The path scan mirrors lockheld's: linear, branch-forking, and silent
// about channels it cannot resolve to a variable.
var ChanHygiene = &analysis.Analyzer{
	Name: "chanhygiene",
	Doc:  "flag multi-owner channel close, send-after-close on a path, and bare blocking sends in HTTP handlers",
	Run:  runChanHygiene,
}

func runChanHygiene(pass *analysis.Pass) error {
	checkMultiClose(pass)
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		scanSendAfterClose(pass, body.List, map[*types.Var]bool{})
		if isHTTPHandler(pass.Info, decl, lit) {
			checkHandlerSends(pass, body)
		}
	})
	return nil
}

// checkMultiClose reports every close of a channel variable that is
// closed in more than one function of the package.
func checkMultiClose(pass *analysis.Pass) {
	type closeSite struct {
		pos  ast.Node
		host ast.Node // enclosing FuncDecl or FuncLit
	}
	sites := map[*types.Var][]closeSite{}
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		var host ast.Node = decl
		if decl == nil {
			host = lit
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != host {
				return false // inner literals get their own visit
			}
			if v := closedChan(pass.Info, n); v != nil {
				sites[v] = append(sites[v], closeSite{pos: n, host: host})
			}
			return true
		})
	})
	for v, ss := range sites {
		hosts := map[ast.Node]bool{}
		for _, s := range ss {
			hosts[s.host] = true
		}
		if len(hosts) < 2 {
			continue
		}
		for _, s := range ss {
			pass.Reportf(s.pos.Pos(), "%s is closed in %d different functions; a channel needs exactly one closing owner", v.Name(), len(hosts))
		}
	}
}

// closedChan matches `close(x)` where x resolves to a channel
// variable, returning the variable.
func closedChan(info *types.Info, n ast.Node) *types.Var {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		return nil
	}
	v, _ := refObject(info, root).(*types.Var)
	return v
}

// scanSendAfterClose walks one statement list with the set of channel
// variables closed so far on this path; branches fork the set, like
// lockheld's held map.
func scanSendAfterClose(pass *analysis.Pass, stmts []ast.Stmt, closed map[*types.Var]bool) {
	fork := func() map[*types.Var]bool {
		c := make(map[*types.Var]bool, len(closed))
		for k := range closed {
			c[k] = true
		}
		return c
	}
	for _, st := range stmts {
		switch v := st.(type) {
		case *ast.ExprStmt:
			if ch := closedChan(pass.Info, v.X); ch != nil {
				closed[ch] = true
			}
		case *ast.SendStmt:
			if root := rootIdent(v.Chan); root != nil {
				if ch, _ := refObject(pass.Info, root).(*types.Var); ch != nil && closed[ch] {
					pass.Reportf(v.Pos(), "send on %s after close(%s) on this path; sends on a closed channel panic", ch.Name(), ch.Name())
				}
			}
		case *ast.BlockStmt:
			scanSendAfterClose(pass, v.List, fork())
		case *ast.IfStmt:
			scanSendAfterClose(pass, v.Body.List, fork())
			if v.Else != nil {
				scanSendAfterClose(pass, []ast.Stmt{v.Else}, fork())
			}
		case *ast.ForStmt:
			scanSendAfterClose(pass, v.Body.List, fork())
		case *ast.RangeStmt:
			scanSendAfterClose(pass, v.Body.List, fork())
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				scanSendAfterClose(pass, c.(*ast.CaseClause).Body, fork())
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				scanSendAfterClose(pass, c.(*ast.CaseClause).Body, fork())
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				scanSendAfterClose(pass, c.(*ast.CommClause).Body, fork())
			}
		}
	}
}

// isHTTPHandler reports whether the function takes an
// http.ResponseWriter parameter — the repository's definition of "a
// request handler".
func isHTTPHandler(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	var ft *ast.FuncType
	switch {
	case decl != nil:
		ft = decl.Type
	case lit != nil:
		ft = lit.Type
	default:
		return false
	}
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if ok && isNamedInterface(tv.Type, "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// isNamedInterface reports whether t is the named interface
// pkgPath.name.
func isNamedInterface(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// checkHandlerSends flags plain sends in a handler body that are not
// select cases. Sends inside nested function literals are skipped: a
// goroutine the handler spawns is not holding the request's connection
// hostage (goroutineleak polices its lifecycle instead).
func checkHandlerSends(pass *analysis.Pass, body *ast.BlockStmt) {
	lite.Inspect(body, func(stack []ast.Node) bool {
		switch v := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if len(stack) >= 2 {
				if cc, ok := stack[len(stack)-2].(*ast.CommClause); ok && cc.Comm == ast.Stmt(v) {
					return true // select case: non-blocking by construction
				}
			}
			pass.Reportf(v.Pos(), "blocking channel send in a request handler; wrap it in a select with ctx.Done() or default so a stuck consumer cannot pin the connection")
		}
		return true
	})
}
