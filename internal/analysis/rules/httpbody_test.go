package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestHTTPBody(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("httpbody"), HTTPBody)
}

// TestRegistry pins the analyzer set: a rule dropped from All() would
// silently stop gating CI.
func TestRegistry(t *testing.T) {
	want := map[string]bool{
		"determinism": true, "ctxpropagate": true, "lockheld": true,
		"errwrap": true, "httpbody": true,
		"goroutineleak": true, "timerstop": true, "atomicmix": true,
		"chanhygiene": true, "hotpathalloc": true,
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
	if sub, ok := ByName("determinism,errwrap"); !ok || len(sub) != 2 {
		t.Errorf("ByName(determinism,errwrap) = %v, %v", sub, ok)
	}
	if _, ok := ByName("nosuchrule"); ok {
		t.Error("ByName accepted an unknown rule")
	}
}
