package analysis

import (
	"go/token"
	"testing"
)

// TestLoadModulePackages smoke-tests the loader against the repository
// itself: module-local recursion (serving imports resilience), stdlib
// source-importing (net/http closure), and directive collection all run
// on real input.
func TestLoadModulePackages(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(Config{Fset: fset, Dir: "../.."}, "./internal/serving", "./internal/textkit")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("package %s loaded incompletely", p.Path)
		}
	}
	sv := byPath["repro/internal/serving"]
	if sv == nil {
		t.Fatalf("serving package missing; got %v", byPath)
	}
	// The serving package must see real types for its stdlib and
	// intra-module imports, not error sentinels.
	found := false
	for _, imp := range sv.Types.Imports() {
		if imp.Path() == "repro/internal/resilience" {
			found = true
		}
	}
	if !found {
		t.Fatalf("serving package lost its resilience import: %v", sv.Types.Imports())
	}
}

// TestLoadWholeRepo loads every package the driver would, proving the
// stdlib source importer can carry the full closure (net/http,
// net/http/httputil, encoding/json, ...).
func TestLoadWholeRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo load in -short mode")
	}
	pkgs, err := Load(Config{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("got %d packages, expected the whole module", len(pkgs))
	}
}
