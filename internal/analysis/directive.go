package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// directivePrefix introduces a paslint control comment. Directives use
// the Go convention for machine-readable comments: no space after //,
// tool name, colon, verb.
const directivePrefix = "//paslint:"

// Directive verbs. VerbAllow suppresses findings; VerbHotPath marks a
// function as an allocation-lean hot path for the hotpathalloc rule.
const (
	VerbAllow   = "allow"
	VerbHotPath = "hotpath"
)

// A Directive is one parsed //paslint:<verb> comment.
//
// An allow directive suppresses findings of the named rules on its own
// line and on the line immediately below it (so it can ride at the end
// of the offending line or stand alone above it).
//
// A hotpath directive marks the function whose declaration starts on
// its own line or the line below — i.e. it sits on the func line or in
// the doc comment directly above — as a designated hot path: the
// hotpathalloc rule then flags allocation-prone constructs in that
// function's body.
type Directive struct {
	// Verb is VerbAllow or VerbHotPath.
	Verb string
	// Rules are the rule names an allow directive silences
	// ("determinism", "ctxpropagate", ...). Never empty after a
	// successful allow parse; always empty for hotpath.
	Rules []string
	// Reason is the mandatory human justification. paslint refuses
	// reason-less directives: an unexplained suppression is just a bug
	// with a comment on it, and an unexplained hot-path marker gives the
	// next reader no budget to hold the function to.
	Reason string
	// File is the source file the comment lives in (as rendered by the
	// loader's FileSet). Line numbers alone collide across files.
	File string
	// Line is the 1-based source line the comment starts on.
	Line int
}

// Covers reports whether the directive silences rule findings on line.
// Only allow directives suppress anything.
func (d Directive) Covers(rule string, line int) bool {
	if d.Verb != VerbAllow {
		return false
	}
	if line != d.Line && line != d.Line+1 {
		return false
	}
	for _, r := range d.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// ParseDirective parses one comment's text. The input may keep or drop
// the leading "//" marker; block comments (/* */) are never directives.
// The second result reports whether the comment is a paslint directive
// at all — when it is false the error is nil and the comment is simply
// not paslint's business. A malformed directive (unknown verb, empty
// rule list, missing reason) returns true plus a descriptive error so
// the runner can surface it as a finding instead of silently ignoring a
// suppression the author believed was active.
func ParseDirective(text string) (Directive, bool, error) {
	if !strings.HasPrefix(text, "//") {
		text = "//" + text
	}
	if strings.HasPrefix(text, "/*") {
		return Directive{}, false, nil
	}
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		// "// paslint:allow" (with a space) is a classic near-miss that
		// would silently not suppress; flag it as malformed rather than
		// unrelated.
		trimmed := strings.TrimPrefix(text, "//")
		if strings.HasPrefix(strings.TrimLeftFunc(trimmed, unicode.IsSpace), "paslint:") && trimmed != strings.TrimLeftFunc(trimmed, unicode.IsSpace) {
			return Directive{}, true, fmt.Errorf("malformed paslint directive: no space allowed between // and paslint:")
		}
		return Directive{}, false, nil
	}
	verb := rest
	args := ""
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	switch verb {
	case VerbAllow:
	case VerbHotPath:
		if args == "" {
			return Directive{}, true, fmt.Errorf("paslint:hotpath is missing its reason — say why this function must stay allocation-lean")
		}
		return Directive{Verb: VerbHotPath, Reason: args}, true, nil
	default:
		return Directive{}, true, fmt.Errorf("unknown paslint directive %q (paslint:allow and paslint:hotpath are defined)", verb)
	}
	ruleField := args
	reason := ""
	if i := strings.IndexFunc(args, unicode.IsSpace); i >= 0 {
		ruleField, reason = args[:i], strings.TrimSpace(args[i+1:])
	}
	if ruleField == "" {
		return Directive{}, true, fmt.Errorf("paslint:allow needs a rule list: //paslint:allow <rule>[,<rule>] <reason>")
	}
	var rules []string
	for _, r := range strings.Split(ruleField, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return Directive{}, true, fmt.Errorf("paslint:allow rule list %q has an empty element", ruleField)
		}
		if !isRuleName(r) {
			return Directive{}, true, fmt.Errorf("paslint:allow rule %q is not a valid rule name (want lower-case identifier)", r)
		}
		rules = append(rules, r)
	}
	if reason == "" {
		return Directive{}, true, fmt.Errorf("paslint:allow %s is missing its reason — say why the finding is acceptable", ruleField)
	}
	return Directive{Verb: VerbAllow, Rules: rules, Reason: reason}, true, nil
}

// isRuleName reports whether s looks like a rule identifier:
// lower-case ASCII letters and digits, starting with a letter.
func isRuleName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// fileDirectives extracts every directive in f, plus a diagnostic for
// each malformed one (rule "paslint", never suppressible).
func fileDirectives(fset *token.FileSet, f *ast.File) ([]Directive, []Diagnostic) {
	var ds []Directive
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, isDirective, err := ParseDirective(c.Text)
			if !isDirective {
				continue
			}
			pos := fset.Position(c.Pos())
			if err != nil {
				bad = append(bad, Diagnostic{Pos: pos, Rule: "paslint", Message: err.Error()})
				continue
			}
			d.File = pos.Filename
			d.Line = pos.Line
			ds = append(ds, d)
		}
	}
	return ds, bad
}
