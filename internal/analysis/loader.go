package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package plus the lint
// metadata (suppression directives) the runner needs.
type Package struct {
	// Path is the import path ("repro", "repro/internal/serving", ...).
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Fset is the FileSet all positions resolve against.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the type-checker's output for Files.
	Types *types.Package
	Info  *types.Info
	// Module is the module path the loader ran under.
	Module string

	directives []Directive
	badDirs    []Diagnostic // malformed directives, reported as findings
}

// Config configures a Load.
type Config struct {
	// Fset receives all token positions. Nil means a fresh set.
	Fset *token.FileSet
	// Dir is the module root (the directory holding go.mod, or any tree
	// of Go packages to treat as one module).
	Dir string
	// Module is the import-path prefix of packages under Dir. Empty
	// means read it from Dir/go.mod.
	Module string
	// Importer resolves non-module (standard library) imports. Nil
	// means a fresh SourceImporter on Fset. Sharing one across loads
	// amortizes the cost of type-checking the stdlib closure.
	Importer *SourceImporter
}

// Load discovers, parses, and type-checks the module packages matching
// patterns. Supported patterns: "./..." (everything under Dir),
// "./dir/..." (a subtree), "./dir" (one package), and the equivalent
// full import paths. Test files are not loaded: paslint's invariants
// are about production code, and the rules that mention tests
// (errwrap's discarded-error ban) exclude them by definition.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if cfg.Fset == nil {
		cfg.Fset = token.NewFileSet()
	}
	if cfg.Importer == nil {
		cfg.Importer = NewSourceImporter(cfg.Fset)
	}
	abs, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %q: %w", cfg.Dir, err)
	}
	cfg.Dir = abs
	if cfg.Module == "" {
		cfg.Module, err = modulePath(cfg.Dir)
		if err != nil {
			return nil, err
		}
	}
	ld := &loader{cfg: cfg, checked: make(map[string]*Package), busy: make(map[string]bool)}
	if err := ld.discover(); err != nil {
		return nil, err
	}
	paths, err := ld.match(patterns)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// modulePath reads the module declaration from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: no module path configured and %s/go.mod unreadable: %w", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if mp := strings.TrimSpace(rest); mp != "" {
				return strings.Trim(mp, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
}

type loader struct {
	cfg     Config
	dirs    map[string]string // import path -> absolute dir
	checked map[string]*Package
	busy    map[string]bool
}

// discover walks the module tree recording every directory that holds
// buildable non-test Go files. testdata, vendor, and dot-directories
// are skipped, matching the go tool's convention.
func (ld *loader) discover() error {
	ld.dirs = make(map[string]string)
	return filepath.WalkDir(ld.cfg.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.cfg.Dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := ld.cfg.Importer.ctxt.ImportDir(path, 0)
		if err != nil {
			return nil // no buildable Go files here; keep walking
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(ld.cfg.Dir, path)
		if err != nil {
			return err
		}
		ip := ld.cfg.Module
		if rel != "." {
			ip = ld.cfg.Module + "/" + filepath.ToSlash(rel)
		}
		ld.dirs[ip] = path
		return nil
	})
}

// match expands patterns against the discovered package set, returning
// sorted import paths.
func (ld *loader) match(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := make(map[string]bool)
	for _, pat := range patterns {
		norm := strings.TrimPrefix(pat, "./")
		norm = strings.TrimSuffix(norm, "/")
		if norm == "..." || norm == "" && strings.HasSuffix(pat, "...") {
			for ip := range ld.dirs {
				selected[ip] = true
			}
			continue
		}
		// Expand "dir/..." vs exact "dir"; accept both module-relative
		// and fully qualified forms.
		subtree := false
		if rest, ok := strings.CutSuffix(norm, "/..."); ok {
			subtree, norm = true, rest
		}
		full := norm
		if norm == "." {
			full = ld.cfg.Module
		} else if !strings.HasPrefix(norm, ld.cfg.Module) {
			full = ld.cfg.Module + "/" + norm
		}
		n := 0
		for ip := range ld.dirs {
			if ip == full || (subtree && strings.HasPrefix(ip, full+"/")) {
				selected[ip] = true
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat)
		}
	}
	out := make([]string, 0, len(selected))
	for ip := range selected {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out, nil
}

// check type-checks one module package (and, recursively, its
// intra-module dependencies), memoized.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	if ld.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	ld.busy[path] = true
	defer delete(ld.busy, path)

	dir, ok := ld.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %q not found under %s", path, ld.cfg.Dir)
	}
	bp, err := ld.cfg.Importer.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Module: ld.cfg.Module, Fset: ld.cfg.Fset}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.cfg.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
		ds, bad := fileDirectives(ld.cfg.Fset, f)
		pkg.directives = append(pkg.directives, ds...)
		pkg.badDirs = append(pkg.badDirs, bad...)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: &moduleImporter{ld: ld},
		Sizes:    ld.cfg.Importer.conf().Sizes,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.cfg.Fset, pkg.Files, pkg.Info)
	if len(terrs) > 0 {
		// Module packages must check cleanly: analyzers reason over the
		// type info, and holes in it mean silent false negatives.
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, terrs[0])
	}
	pkg.Types = tpkg
	ld.checked[path] = pkg
	return pkg, nil
}

// conf exposes the sizes used by the stdlib importer so module packages
// check under identical layout assumptions.
func (si *SourceImporter) conf() types.Config {
	return types.Config{Sizes: types.SizesFor("gc", si.ctxt.GOARCH)}
}

// moduleImporter routes intra-module imports back into the loader and
// everything else to the shared stdlib source importer.
type moduleImporter struct {
	ld *loader
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	mod := mi.ld.cfg.Module
	if path == mod || strings.HasPrefix(path, mod+"/") {
		pkg, err := mi.ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return mi.ld.cfg.Importer.ImportFrom(path, srcDir, mode)
}
