// Package lite holds the small control-flow and escape helpers shared
// by the concurrency and resource-lifecycle rules (goroutineleak,
// timerstop, chanhygiene, hotpathalloc). "Lite" is a promise, not an
// apology: these are linear, syntax-directed approximations of CFG and
// escape analysis — sound enough to police this repository's idioms,
// cheap enough to run over every package on every push, and honest
// about their blind spots (each caller documents the false
// negatives/positives it accepts).
package lite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Inspect walks root like ast.Inspect but hands fn the full ancestor
// stack, innermost node last. Returning false prunes the subtree.
func Inspect(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			// ast.Inspect sends no closing nil for a pruned subtree.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// IsChanType reports whether t's underlying type is a channel.
func IsChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// HasCancellationSignal reports whether body contains a construct that
// can observe cancellation or shutdown: a channel receive (unary <-,
// including <-ctx.Done()), a range over a channel, a select with a
// receive case, or — when the body also contains a return or break to
// act on it — a call that passes a context.Context or channel along
// (delegating the wait, as resilience.SleepContext does). Nested `go`
// literals are not descended into: their exits belong to them.
func HasCancellationSignal(body ast.Node, info *types.Info) bool {
	found := false
	hasExitStmt := false
	var delegated bool // ctx/chan-passing call seen
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[v.X]; ok && IsChanType(tv.Type) {
				found = true
				return false
			}
		case *ast.CommClause:
			// Any select case that is not the default observes a channel.
			if v.Comm != nil {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			hasExitStmt = true
		case *ast.BranchStmt:
			if v.Tok == token.BREAK || v.Tok == token.GOTO {
				hasExitStmt = true
			}
		case *ast.CallExpr:
			for _, arg := range v.Args {
				if tv, ok := info.Types[arg]; ok && (IsContextType(tv.Type) || IsChanType(tv.Type)) {
					delegated = true
					break
				}
			}
		}
		return true
	})
	return found || (delegated && hasExitStmt)
}

// InfiniteLoops returns the `for` statements under root (skipping
// nested function literals and `go` statements) that have no loop
// condition — the shape of a background loop that runs until something
// inside it decides to stop.
func InfiniteLoops(root ast.Node) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if v.Cond == nil {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// ReturnsBefore scans the execution paths of body that follow start (a
// statement in body, possibly nested), in source order, and returns the
// positions of return statements reachable before resolve matches a
// node on that path. A resolving node inside a DeferStmt resolves the
// remainder of the function outright (that is the point of defer).
// Reaching the end of body with the main path unresolved counts as one
// more unresolved exit, reported at body's closing brace — functions
// can fall off the end without a return.
//
// The scan mirrors the lockheld analyzer's discipline: nested control
// flow is entered with a fork of the current state, so a branch that
// resolves and returns does not bless the fall-through path. Function
// literals are not descended into (a callback does not run on this
// path). The approximation is linear: a resolve inside one branch does
// not resolve its siblings, and loops are scanned once.
func ReturnsBefore(body *ast.BlockStmt, start ast.Stmt, resolve func(ast.Node) bool) []token.Pos {
	s := &pathScan{start: start, resolve: resolve}
	st := scanState{}
	st = s.scanStmts(body.List, st)
	if s.started && !st.resolved {
		s.rets = append(s.rets, body.Rbrace)
	}
	return s.rets
}

type pathScan struct {
	start   ast.Stmt
	resolve func(ast.Node) bool
	started bool
	rets    []token.Pos
}

type scanState struct {
	resolved bool
}

// scanStmts processes one statement list, returning the fall-through
// state.
func (s *pathScan) scanStmts(stmts []ast.Stmt, st scanState) scanState {
	for _, stmt := range stmts {
		if !s.started {
			if containsStmt(stmt, s.start) {
				s.started = true
				// The creation statement itself cannot also resolve or
				// return; move on to the next statement. If start is
				// nested inside a branch of stmt, the conservative choice
				// is to begin scanning *after* stmt: paths inside the
				// remainder of that branch are skipped (false negative,
				// never a false positive).
				continue
			}
			continue
		}
		st = s.scanStmt(stmt, st)
	}
	return st
}

func (s *pathScan) scanStmt(stmt ast.Stmt, st scanState) scanState {
	if st.resolved {
		return st
	}
	switch v := stmt.(type) {
	case *ast.DeferStmt:
		if s.resolvesIn(v.Call) {
			st.resolved = true
		}
	case *ast.ReturnStmt:
		s.rets = append(s.rets, v.Pos())
	case *ast.BlockStmt:
		st = s.scanStmts(v.List, st)
	case *ast.IfStmt:
		fork := s.scanStmts(v.Body.List, st)
		if v.Else != nil {
			s.scanStmt(v.Else, st)
		}
		_ = fork // branches do not bless the fall-through path
	case *ast.ForStmt:
		s.scanStmts(v.Body.List, st)
	case *ast.RangeStmt:
		s.scanStmts(v.Body.List, st)
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			s.scanStmts(c.(*ast.CaseClause).Body, st)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			s.scanStmts(c.(*ast.CaseClause).Body, st)
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			s.scanStmts(c.(*ast.CommClause).Body, st)
		}
	default:
		if s.resolvesIn(stmt) {
			st.resolved = true
		}
	}
	return st
}

// resolvesIn reports whether any node under n (outside nested function
// literals) satisfies resolve.
func (s *pathScan) resolvesIn(n ast.Node) bool {
	hit := false
	ast.Inspect(n, func(m ast.Node) bool {
		if hit {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil && s.resolve(m) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// containsStmt reports whether target is n or nested anywhere under n.
func containsStmt(n ast.Stmt, target ast.Stmt) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if m == ast.Node(target) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Escapes judges whether the value produced at the top of stack (the
// innermost node, a composite literal or its &-address) leaves the
// enclosing function, from its syntactic context alone: returned, sent
// on a channel, passed as a call argument, stored through a pointer,
// field, index, or package-level variable, or folded into a larger
// literal that itself escapes. Assignment to a fresh local and
// immediate local consumption (indexing, ranging, discarding) do not
// escape. When the context is something this walk does not model, it
// says escapes=true — for an allocation linter the conservative answer
// is the useful one.
func Escapes(stack []ast.Node, info *types.Info) bool {
	// Walk outward from the literal.
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				continue // &T{...}: judged by where the pointer goes
			}
			return true
		case *ast.KeyValueExpr, *ast.CompositeLit:
			continue // element of a larger literal: judged by the literal
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return true
		case *ast.CallExpr:
			// As an argument the value is the callee's to keep; as the
			// function expression it is being called, which keeps it local.
			for _, arg := range p.Args {
				if arg == child {
					return true
				}
			}
			return false
		case *ast.AssignStmt:
			return assignEscapes(p, child, info)
		case *ast.ValueSpec:
			// var x = T{...} inside a function body: local.
			return false
		case *ast.ExprStmt:
			return false // value discarded
		case *ast.RangeStmt:
			return p.X != child // ranging over the literal consumes it locally
		case *ast.IndexExpr:
			if p.X == child {
				return false // []T{...}[i]: consumed locally
			}
			return true
		default:
			return true
		}
	}
	return true
}

// assignEscapes classifies one assignment: the literal escapes when its
// destination is anything other than a fresh or function-local plain
// identifier (a field, a dereference, an index expression, a
// package-level variable).
func assignEscapes(a *ast.AssignStmt, rhs ast.Node, info *types.Info) bool {
	idx := -1
	for i, r := range a.Rhs {
		if r == rhs {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(a.Lhs) {
		// Tuple shapes this walk does not model; be conservative.
		return true
	}
	switch lhs := ast.Unparen(a.Lhs[idx]).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			// A package-level destination outlives the function.
			return v.Parent() == v.Pkg().Scope()
		}
		return true
	default:
		return true // x.f = ..., *p = ..., m[k] = ...
	}
}

// IsSliceOrMapLit reports whether lit's type is a slice or map — the
// composite kinds whose backing store always allocates.
func IsSliceOrMapLit(lit *ast.CompositeLit, info *types.Info) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
