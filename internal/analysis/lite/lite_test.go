package lite

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file, returning the file
// and the info the helpers consume.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "lite_test_src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("litetest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// funcBody finds the named function's body.
func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %q in fixture", name)
	return nil
}

func TestHasCancellationSignal(t *testing.T) {
	_, f, info := typecheck(t, `package p

import "context"

func sleeper(ctx context.Context) error { return ctx.Err() }

func withReceive(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

func withDelegate(ctx context.Context) {
	for {
		if err := sleeper(ctx); err != nil {
			return
		}
	}
}

func delegateNoExit(ctx context.Context) {
	for {
		_ = sleeper(ctx)
	}
}

func spinner() {
	n := 0
	for {
		n++
	}
}
`)
	cases := map[string]bool{
		"withReceive":    true,
		"withDelegate":   true,
		"delegateNoExit": false,
		"spinner":        false,
	}
	for name, want := range cases {
		if got := HasCancellationSignal(funcBody(t, f, name), info); got != want {
			t.Errorf("HasCancellationSignal(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestInfiniteLoops(t *testing.T) {
	_, f, _ := typecheck(t, `package p

func loops() {
	for {
	}
	for i := 0; ; i++ {
	}
	for i := 0; i < 3; i++ {
	}
	go func() {
		for {
		}
	}()
}
`)
	got := InfiniteLoops(funcBody(t, f, "loops"))
	if len(got) != 2 {
		t.Fatalf("InfiniteLoops found %d loops, want 2 (bounded loop and go-literal loop excluded)", len(got))
	}
}

func TestReturnsBefore(t *testing.T) {
	_, f, _ := typecheck(t, `package p

import "time"

func deferred(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	if d > 0 {
		return
	}
	return
}

func leaky(d time.Duration, early bool) {
	t := time.NewTimer(d)
	if early {
		return // not stopped on this path
	}
	t.Stop()
}

func fallsOff(d time.Duration) {
	t := time.NewTimer(d)
	_ = t
}
`)
	isStop := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Stop"
	}
	creation := func(body *ast.BlockStmt) ast.Stmt { return body.List[0] }

	for name, want := range map[string]int{"deferred": 0, "leaky": 1, "fallsOff": 1} {
		body := funcBody(t, f, name)
		got := ReturnsBefore(body, creation(body), isStop)
		if len(got) != want {
			t.Errorf("ReturnsBefore(%s) reported %d unresolved exits, want %d", name, len(got), want)
		}
	}
}

func TestEscapes(t *testing.T) {
	_, f, info := typecheck(t, `package p

var sink []int

type box struct{ v []int }

func escaping(b *box) []int {
	b.v = []int{1}        // stored through a pointer: escapes
	sink = []int{2}       // package-level: escapes
	return []int{3}       // returned: escapes
}

func local() int {
	xs := []int{1, 2, 3} // fresh local: stays
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, x := range []int{4, 5} { // ranged in place: stays
		total += x
	}
	return total
}
`)
	counts := map[bool]int{}
	for _, name := range []string{"escaping", "local"} {
		Inspect(funcBody(t, f, name), func(stack []ast.Node) bool {
			if lit, ok := stack[len(stack)-1].(*ast.CompositeLit); ok && IsSliceOrMapLit(lit, info) {
				counts[Escapes(stack, info)]++
			}
			return true
		})
	}
	if counts[true] != 3 || counts[false] != 2 {
		t.Errorf("escape classification = %d escaping / %d local, want 3 / 2", counts[true], counts[false])
	}
}
