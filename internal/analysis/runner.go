package analysis

import (
	"fmt"
	"sort"
)

// Run applies every analyzer to every package, filters findings through
// //paslint:allow directives, and returns the surviving diagnostics
// sorted by position. Malformed directives are themselves findings
// (rule "paslint") and cannot be suppressed — a suppression the author
// believes is active but is not would otherwise rot silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Path:       pkg.Path,
				Module:     pkg.Module,
				Directives: pkg.directives,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: running %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range diags {
			if !suppressed(pkg.directives, d) {
				out = append(out, d)
			}
		}
		out = append(out, pkg.badDirs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

func suppressed(ds []Directive, d Diagnostic) bool {
	for _, dir := range ds {
		if dir.File != "" && dir.File != d.Pos.Filename {
			continue
		}
		if dir.Covers(d.Rule, d.Pos.Line) {
			return true
		}
	}
	return false
}
