// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework.
//
// A fixture is a directory containing one package. Lines that should be
// flagged carry a trailing expectation comment:
//
//	time.Now() // want `time\.Now in deterministic package`
//
// The backquoted string is a regexp matched against the diagnostic
// message; several expectations may sit on one line. Lines with
// //paslint:allow directives exercise suppression: a suppressed finding
// must NOT be reported, so such lines simply carry no want comment.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Shared across fixture loads so the stdlib closure (context, net/http,
// sync, ...) is type-checked once per test binary, not once per
// fixture.
var (
	sharedFset     = token.NewFileSet()
	sharedImporter = analysis.NewSourceImporter(sharedFset)
)

// Run loads the fixture package rooted at dir, applies the analyzers,
// and compares findings with the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := analysis.Load(analysis.Config{
		Fset:     sharedFset,
		Dir:      abs,
		Module:   filepath.Base(abs),
		Importer: sharedImporter,
	}, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analysistest: running: %v", err)
	}
	wants := collectWants(t, pkgs)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) && (w.rule == "" || w.rule == d.Rule) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic %s:%d: %s: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	rule string // optional "rule:" prefix in the expectation
	re   *regexp.Regexp
}

// wantRx pulls the backquoted patterns out of a want comment.
var wantRx = regexp.MustCompile("`([^`]*)`")

// collectWants parses // want comments from the loaded fixture files.
func collectWants(t *testing.T, pkgs []*analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					pats := wantRx.FindAllStringSubmatch(text, -1)
					if len(pats) == 0 {
						t.Fatalf("%s:%d: malformed want comment (need backquoted pattern): %s", pos.Filename, pos.Line, c.Text)
					}
					for _, m := range pats {
						pat, rule := m[1], ""
						if i := strings.Index(pat, "::"); i > 0 {
							rule, pat = pat[:i], pat[i+2:]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, rule: rule, re: re})
					}
				}
			}
		}
	}
	return wants
}

// Fixture returns the conventional fixture path testdata/src/<name>
// relative to the test's working directory.
func Fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}
