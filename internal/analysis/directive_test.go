package analysis

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		in        string
		directive bool
		wantErr   bool
		verb      string
		rules     []string
		reason    string
	}{
		{"//paslint:allow determinism production jitter", true, false, VerbAllow, []string{"determinism"}, "production jitter"},
		{"paslint:allow errwrap,httpbody shared reason", true, false, VerbAllow, []string{"errwrap", "httpbody"}, "shared reason"},
		{"//paslint:allow lockheld   padded   reason  ", true, false, VerbAllow, []string{"lockheld"}, "padded   reason"},
		{"//paslint:hotpath cache-hit path, see BENCH_serving.json", true, false, VerbHotPath, nil, "cache-hit path, see BENCH_serving.json"},
		{"paslint:hotpath shard key of the routing tier", true, false, VerbHotPath, nil, "shard key of the routing tier"},
		// Not directives at all.
		{"// ordinary comment", false, false, "", nil, ""},
		{"//nolint:errcheck", false, false, "", nil, ""},
		{"/*paslint:allow x y*/", false, false, "", nil, ""},
		// Malformed: directive-shaped but unusable.
		{"//paslint:allow", true, true, "", nil, ""},
		{"//paslint:allow determinism", true, true, "", nil, ""},              // no reason
		{"//paslint:allow determinism,,errwrap why", true, true, "", nil, ""}, // empty element
		{"//paslint:allow Determinism why", true, true, "", nil, ""},          // case
		{"//paslint:deny determinism why", true, true, "", nil, ""},           // unknown verb
		{"// paslint:allow determinism why", true, true, "", nil, ""},         // near-miss space
		{"//paslint:hotpath", true, true, "", nil, ""},                        // hotpath without reason
	}
	for _, tc := range cases {
		d, isDirective, err := ParseDirective(tc.in)
		if isDirective != tc.directive {
			t.Errorf("%q: directive=%v, want %v", tc.in, isDirective, tc.directive)
			continue
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("%q: err=%v, wantErr=%v", tc.in, err, tc.wantErr)
			continue
		}
		if err != nil || !isDirective {
			continue
		}
		if d.Verb != tc.verb {
			t.Errorf("%q: verb=%q, want %q", tc.in, d.Verb, tc.verb)
		}
		if strings.Join(d.Rules, ",") != strings.Join(tc.rules, ",") {
			t.Errorf("%q: rules=%v, want %v", tc.in, d.Rules, tc.rules)
		}
		if d.Reason != tc.reason {
			t.Errorf("%q: reason=%q, want %q", tc.in, d.Reason, tc.reason)
		}
	}
}

func TestDirectiveCovers(t *testing.T) {
	d := Directive{Verb: VerbAllow, Rules: []string{"determinism"}, Reason: "r", Line: 10}
	for line, want := range map[int]bool{9: false, 10: true, 11: true, 12: false} {
		if got := d.Covers("determinism", line); got != want {
			t.Errorf("Covers(determinism, %d)=%v, want %v", line, got, want)
		}
	}
	if d.Covers("errwrap", 10) {
		t.Error("directive covered a rule it does not name")
	}
	hp := Directive{Verb: VerbHotPath, Reason: "r", Line: 10}
	if hp.Covers("determinism", 10) || hp.Covers("hotpathalloc", 11) {
		t.Error("hotpath directive must never suppress findings")
	}
}

// FuzzParseDirective: parsing arbitrary comment text must never panic,
// and a successful parse must uphold the invariants the runner relies
// on: non-empty rule list, valid rule names, non-empty reason.
func FuzzParseDirective(f *testing.F) {
	for _, seed := range []string{
		"//paslint:allow determinism production jitter must decorrelate",
		"//paslint:allow errwrap,httpbody one reason for two rules",
		"//paslint:allow",
		"//paslint:allow x",
		"//paslint:deny y z",
		"// paslint:allow spaced out",
		"//paslint:allow a,,b reason",
		"//paslint:allow A reason",
		"plain text",
		"//paslint:",
		"//paslint:allow \t weird\tws",
		"/*paslint:allow block comments never count*/",
		"//paslint:hotpath cache-hit fast path",
		"//paslint:hotpath",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, isDirective, err := ParseDirective(s)
		if !isDirective && err != nil {
			t.Fatalf("non-directive returned error: %q -> %v", s, err)
		}
		if isDirective && err == nil {
			switch d.Verb {
			case VerbAllow:
				if len(d.Rules) == 0 {
					t.Fatalf("parsed allow directive with no rules: %q", s)
				}
				for _, r := range d.Rules {
					if !isRuleName(r) {
						t.Fatalf("parsed invalid rule name %q from %q", r, s)
					}
				}
			case VerbHotPath:
				if len(d.Rules) != 0 {
					t.Fatalf("parsed hotpath directive with a rule list: %q", s)
				}
			default:
				t.Fatalf("parsed directive with unknown verb %q from %q", d.Verb, s)
			}
			if d.Reason == "" {
				t.Fatalf("parsed directive with empty reason: %q", s)
			}
		}
	})
}
