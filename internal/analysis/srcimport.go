package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
)

// SourceImporter type-checks standard-library packages from their
// GOROOT sources. It exists because the module must stay
// dependency-free: the canonical loaders (go/packages, x/tools'
// srcimporter) are off the table, and importer.Default needs compiled
// export data the toolchain no longer ships for the standard library.
//
// Function bodies are skipped (types.Config.IgnoreFuncBodies): the
// analyzers only need the standard library's API surface, and skipping
// bodies cuts the load time of a net/http-sized closure by an order of
// magnitude. Soft type errors that follow from skipped bodies (notably
// "imported and not used" for imports referenced only inside bodies)
// are swallowed; module packages are checked strictly by the Loader,
// not here.
//
// A SourceImporter is not safe for concurrent use: imports recurse
// through the same instance.
type SourceImporter struct {
	fset *token.FileSet
	ctxt build.Context
	pkgs map[string]*types.Package // keyed by vendor-resolved import path
	busy map[string]bool           // cycle guard (never fires on a healthy GOROOT)
}

// NewSourceImporter creates an importer sharing fset with its caller so
// positions in imported packages stay meaningful. Cgo is disabled: the
// pure-Go fallback files are the ones a type-checker can read, and every
// stdlib package the module touches has them.
func NewSourceImporter(fset *token.FileSet) *SourceImporter {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &SourceImporter{
		fset: fset,
		ctxt: ctxt,
		pkgs: make(map[string]*types.Package),
		busy: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (si *SourceImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. srcDir is the directory of
// the importing file; it drives GOROOT vendor resolution (net/http's
// golang.org/x/net/... imports live under GOROOT/src/vendor).
func (si *SourceImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	bp, err := si.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: locating %q (from %s): %w", path, srcDir, err)
	}
	if pkg, ok := si.pkgs[bp.ImportPath]; ok {
		return pkg, nil
	}
	if si.busy[bp.ImportPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", bp.ImportPath)
	}
	si.busy[bp.ImportPath] = true
	defer delete(si.busy, bp.ImportPath)

	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(si.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(bp.Dir, name), err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         si,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		// Swallow soft errors: with bodies skipped, imports used only in
		// bodies look unused. The package's API surface still checks out.
		Error: func(error) {},
	}
	pkg, _ := conf.Check(bp.ImportPath, si.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %q produced no package", bp.ImportPath)
	}
	pkg.MarkComplete()
	si.pkgs[bp.ImportPath] = pkg
	return pkg, nil
}
