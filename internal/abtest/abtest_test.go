package abtest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/humaneval"
	"repro/internal/pipeline"
	"repro/internal/simllm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Alpha: 0, MinPerArm: 10}); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, err := New(Config{Alpha: 1.5, MinPerArm: 10}); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := New(Config{Alpha: 0.05, MinPerArm: 1}); err == nil {
		t.Error("tiny MinPerArm should fail")
	}
}

func TestAssignAlternatesAndBalances(t *testing.T) {
	test, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Arm]int{}
	for i := 0; i < 100; i++ {
		counts[test.Assign()]++
	}
	if counts[Control] != 50 || counts[Treatment] != 50 {
		t.Fatalf("unbalanced split: %v", counts)
	}
}

func TestRecordValidation(t *testing.T) {
	test, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := test.Record(Arm(7), true); err == nil {
		t.Error("bad arm should fail")
	}
	if err := test.Record(Control, true); err != nil {
		t.Fatal(err)
	}
	if test.Rate(Control) != 1 {
		t.Fatal("rate wrong")
	}
	if test.Rate(Treatment) != 0 {
		t.Fatal("empty arm rate should be 0")
	}
}

func TestClearWinnerIsSignificant(t *testing.T) {
	test, err := New(Config{Alpha: 0.05, MinPerArm: 100, Sequential: false})
	if err != nil {
		t.Fatal(err)
	}
	// 90% vs 70% over 200 per arm: decisive.
	for i := 0; i < 200; i++ {
		if err := test.Record(Control, i%10 < 7); err != nil {
			t.Fatal(err)
		}
		if err := test.Record(Treatment, i%10 < 9); err != nil {
			t.Fatal(err)
		}
	}
	r := test.Evaluate()
	if !r.Ready || !r.Significant || !r.TreatmentWins {
		t.Fatalf("verdict = %+v", r)
	}
	if !strings.Contains(r.String(), "treatment wins") {
		t.Errorf("render: %s", r.String())
	}
}

func TestNoDifferenceIsNotSignificant(t *testing.T) {
	test, err := New(Config{Alpha: 0.05, MinPerArm: 100, Sequential: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := test.Record(Control, i%5 < 4); err != nil {
			t.Fatal(err)
		}
		if err := test.Record(Treatment, i%5 < 4); err != nil {
			t.Fatal(err)
		}
	}
	r := test.Evaluate()
	if r.Significant {
		t.Fatalf("identical arms flagged significant: %+v", r)
	}
	if !strings.Contains(r.String(), "not significant") {
		t.Errorf("render: %s", r.String())
	}
}

func TestNotReadyBeforeMinSamples(t *testing.T) {
	test, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := test.Record(Control, false); err != nil {
			t.Fatal(err)
		}
		if err := test.Record(Treatment, true); err != nil {
			t.Fatal(err)
		}
	}
	r := test.Evaluate()
	if r.Ready || r.Significant {
		t.Fatalf("too-early verdict: %+v", r)
	}
	if !strings.Contains(r.String(), "collecting") {
		t.Errorf("render: %s", r.String())
	}
}

func TestSequentialIsStricterEarly(t *testing.T) {
	mk := func(sequential bool) Result {
		test, err := New(Config{Alpha: 0.05, MinPerArm: 50, Sequential: sequential})
		if err != nil {
			t.Fatal(err)
		}
		// Modest 82% vs 72% at exactly the minimum sample size.
		for i := 0; i < 50; i++ {
			if err := test.Record(Control, i%50 < 36); err != nil {
				t.Fatal(err)
			}
			if err := test.Record(Treatment, i%50 < 41); err != nil {
				t.Fatal(err)
			}
		}
		return test.Evaluate()
	}
	fixed := mk(false)
	seq := mk(true)
	if fixed.PValue != seq.PValue {
		t.Fatal("p-value should not depend on the stopping rule")
	}
	if seq.Significant && !fixed.Significant {
		t.Fatal("sequential must never be more permissive than fixed")
	}
}

func TestDegenerateAllSameOutcome(t *testing.T) {
	test, err := New(Config{Alpha: 0.05, MinPerArm: 10, Sequential: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := test.Record(Control, true); err != nil {
			t.Fatal(err)
		}
		if err := test.Record(Treatment, true); err != nil {
			t.Fatal(err)
		}
	}
	r := test.Evaluate()
	if r.Significant || r.PValue != 1 {
		t.Fatalf("all-success arms should be a clean null: %+v", r)
	}
}

// TestEndToEndABStudy runs a miniature online study with the real stack:
// traffic split between bare and PAS-augmented responses to a live
// model, availability judged by the rater pool. PAS must win.
func TestEndToEndABStudy(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.CorpusSize = 2500
	cfg.ClassifierExamples = 1500
	cfg.Augment.PerCategoryCap = 40
	cfg.Augment.HeavyCategoryCap = 80
	build, err := pipeline.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := humaneval.NewPool(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	main := simllm.MustModel(simllm.GPT35Turbo)
	test, err := New(Config{Alpha: 0.05, MinPerArm: 60, Sequential: false})
	if err != nil {
		t.Fatal(err)
	}

	prompts := []string{
		"Describe the history and mechanism of how blood pressure regulation works.",
		"Analyze the trade offs of remote work versus office work.",
		"Give me advice on negotiating a salary offer.",
		"Explain the mechanism of antibiotic resistance.",
	}
	for i := 0; i < 160; i++ {
		p := prompts[i%len(prompts)]
		salt := fmt.Sprintf("ab/%d", i)
		arm := test.Assign()
		input := p
		if arm == Treatment {
			input = p + "\n" + build.Model.Complement(p, salt)
		}
		resp := main.Respond(input, simllm.Options{Salt: salt})
		// Availability signal: rubric score >= 4 from the first rater
		// (a stricter bar than the paper's >= 3, giving the test signal
		// on a mid-tier model).
		success := pool[i%len(pool)].Rate(p, resp) >= 4
		if err := test.Record(arm, success); err != nil {
			t.Fatal(err)
		}
	}
	r := test.Evaluate()
	if r.TreatmentRate <= r.ControlRate {
		t.Fatalf("PAS arm (%.2f) should beat control (%.2f)", r.TreatmentRate, r.ControlRate)
	}
	if !r.Ready {
		t.Fatalf("study underpowered: %+v", r)
	}
	t.Logf("A/B verdict: %s", r)
}
