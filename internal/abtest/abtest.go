// Package abtest implements the online experimentation harness a PAS
// deployment runs before flipping traffic: split incoming prompts
// between a control arm (no augmentation) and a treatment arm (PAS),
// collect per-request success signals, and decide with a two-proportion
// z-test — including a sequential early-stopping variant — whether the
// treatment wins. The paper's §4.5 "online" human evaluation is exactly
// such a study; this package makes it a reusable tool.
package abtest

import (
	"fmt"
	"math"
	"strings"
)

// Arm identifies a test arm.
type Arm int

const (
	// Control is the unaugmented arm.
	Control Arm = iota
	// Treatment is the PAS-augmented arm.
	Treatment
)

func (a Arm) String() string {
	if a == Control {
		return "control"
	}
	return "treatment"
}

// Config controls a test.
type Config struct {
	// Alpha is the two-sided significance level (e.g. 0.05).
	Alpha float64
	// MinPerArm is the minimum sample size per arm before any verdict.
	MinPerArm int
	// Sequential enables early stopping with an O'Brien-Fleming-style
	// inflated threshold (alpha spent more strictly early on).
	Sequential bool
}

// DefaultConfig returns a conventional 5% two-sided test with 100
// samples per arm minimum.
func DefaultConfig() Config { return Config{Alpha: 0.05, MinPerArm: 100, Sequential: true} }

// Test accumulates outcomes and renders verdicts.
type Test struct {
	cfg       Config
	successes [2]int
	totals    [2]int
	assignN   int
}

// New creates a test.
// It returns an error when the configuration is out of range.
func New(cfg Config) (*Test, error) {
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("abtest: alpha must be in (0,1), got %v", cfg.Alpha)
	}
	if cfg.MinPerArm < 2 {
		return nil, fmt.Errorf("abtest: MinPerArm must be >= 2, got %d", cfg.MinPerArm)
	}
	return &Test{cfg: cfg}, nil
}

// Assign deterministically routes the n-th request to an arm
// (alternating split keeps arms balanced without randomness, preserving
// the repository-wide reproducibility guarantee).
func (t *Test) Assign() Arm {
	t.assignN++
	if t.assignN%2 == 1 {
		return Control
	}
	return Treatment
}

// Record adds one outcome to an arm. Success is the binary signal (for
// the paper's study: availability, i.e. rating >= 3).
func (t *Test) Record(arm Arm, success bool) error {
	if arm != Control && arm != Treatment {
		return fmt.Errorf("abtest: unknown arm %d", int(arm))
	}
	t.totals[arm]++
	if success {
		t.successes[arm]++
	}
	return nil
}

// Rate returns an arm's success rate (0 when empty).
func (t *Test) Rate(arm Arm) float64 {
	if t.totals[arm] == 0 {
		return 0
	}
	return float64(t.successes[arm]) / float64(t.totals[arm])
}

// Result is a verdict snapshot.
type Result struct {
	ControlRate, TreatmentRate float64
	ControlN, TreatmentN       int
	// Z is the two-proportion z statistic (treatment minus control).
	Z float64
	// PValue is the two-sided p-value.
	PValue float64
	// Significant reports whether the configured threshold was crossed.
	Significant bool
	// TreatmentWins is meaningful only when Significant.
	TreatmentWins bool
	// Ready reports whether both arms reached MinPerArm.
	Ready bool
}

// Evaluate computes the current verdict.
func (t *Test) Evaluate() Result {
	r := Result{
		ControlRate:   t.Rate(Control),
		TreatmentRate: t.Rate(Treatment),
		ControlN:      t.totals[Control],
		TreatmentN:    t.totals[Treatment],
	}
	r.Ready = r.ControlN >= t.cfg.MinPerArm && r.TreatmentN >= t.cfg.MinPerArm
	if r.ControlN == 0 || r.TreatmentN == 0 {
		r.PValue = 1
		return r
	}
	n1, n2 := float64(r.ControlN), float64(r.TreatmentN)
	p1, p2 := r.ControlRate, r.TreatmentRate
	pooled := (float64(t.successes[Control]) + float64(t.successes[Treatment])) / (n1 + n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/n1 + 1/n2))
	if se == 0 {
		r.PValue = 1
		return r
	}
	r.Z = (p2 - p1) / se
	r.PValue = 2 * (1 - stdNormalCDF(math.Abs(r.Z)))

	alpha := t.cfg.Alpha
	if t.cfg.Sequential && r.Ready {
		// O'Brien-Fleming flavour: spend less alpha early. With
		// information fraction f (capped at 1 after 4x MinPerArm),
		// threshold alpha*f^2.
		full := float64(4 * t.cfg.MinPerArm)
		f := math.Min(1, (n1+n2)/(2*full))
		alpha = t.cfg.Alpha * f * f
		if alpha < 1e-6 {
			alpha = 1e-6
		}
	}
	if r.Ready && r.PValue < alpha {
		r.Significant = true
		r.TreatmentWins = r.Z > 0
	}
	return r
}

// stdNormalCDF is the standard normal CDF via erf.
func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// String renders the verdict.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A/B test: control %.1f%% (n=%d) vs treatment %.1f%% (n=%d), z=%.2f, p=%.4f",
		100*r.ControlRate, r.ControlN, 100*r.TreatmentRate, r.TreatmentN, r.Z, r.PValue)
	switch {
	case !r.Ready:
		b.WriteString(" — collecting")
	case r.Significant && r.TreatmentWins:
		b.WriteString(" — treatment wins")
	case r.Significant:
		b.WriteString(" — control wins")
	default:
		b.WriteString(" — not significant")
	}
	return b.String()
}
