package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewEloValidation(t *testing.T) {
	if _, err := NewElo(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewElo(-5); err == nil {
		t.Error("negative k should fail")
	}
}

func TestEloBaseRating(t *testing.T) {
	e, err := NewElo(24)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rating("unknown") != 1000 {
		t.Fatal("unseen player should have base rating")
	}
	if e.Expected("a", "b") != 0.5 {
		t.Fatal("equal ratings should expect 0.5")
	}
}

func TestEloConvergesToWinner(t *testing.T) {
	e, err := NewElo(24)
	if err != nil {
		t.Fatal(err)
	}
	// a beats b 80% of 200 games.
	for i := 0; i < 200; i++ {
		if i%5 == 0 {
			e.Record("b", "a")
		} else {
			e.Record("a", "b")
		}
	}
	if e.Rating("a") <= e.Rating("b") {
		t.Fatalf("a=%f b=%f", e.Rating("a"), e.Rating("b"))
	}
	exp := e.Expected("a", "b")
	if exp < 0.6 || exp > 0.95 {
		t.Fatalf("expected score = %v, want near 0.8", exp)
	}
	if e.Games("a") != 200 || e.Games("b") != 200 {
		t.Fatalf("games = %d/%d", e.Games("a"), e.Games("b"))
	}
}

func TestEloDrawMovesTowardEquality(t *testing.T) {
	e, err := NewElo(24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Record("a", "b")
	}
	gap := e.Rating("a") - e.Rating("b")
	for i := 0; i < 20; i++ {
		e.RecordDraw("a", "b")
	}
	if newGap := e.Rating("a") - e.Rating("b"); newGap >= gap {
		t.Fatalf("draws should shrink the gap: %f -> %f", gap, newGap)
	}
}

// TestEloConservationProperty: total rating is invariant (zero-sum
// updates), regardless of game sequence.
func TestEloConservationProperty(t *testing.T) {
	f := func(results []bool) bool {
		e, err := NewElo(32)
		if err != nil {
			return false
		}
		for _, aWins := range results {
			if aWins {
				e.Record("a", "b")
			} else {
				e.Record("b", "a")
			}
		}
		total := e.Rating("a") + e.Rating("b")
		return math.Abs(total-2000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEloStandingsSorted(t *testing.T) {
	e, err := NewElo(24)
	if err != nil {
		t.Fatal(err)
	}
	e.Record("strong", "weak")
	e.Record("strong", "mid")
	e.Record("mid", "weak")
	s := e.Standings()
	if len(s) != 3 {
		t.Fatalf("standings = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i].Rating > s[i-1].Rating {
			t.Fatalf("standings unsorted: %v", s)
		}
	}
	if s[0].Name != "strong" {
		t.Fatalf("winner not first: %v", s)
	}
}
