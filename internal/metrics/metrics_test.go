package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-4.571428571) > 1e-6 {
		t.Fatalf("variance = %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/short inputs should give 0")
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(4.571428571)) > 1e-6 {
		t.Fatalf("stddev = %v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	} {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrNoData {
		t.Error("empty should return ErrNoData")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q out of range should fail")
	}
}

func TestQuantileUnsortedInputUntouched(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	ci, err := BootstrapMeanCI(xs, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Fatalf("interval not bracketing point: %+v", ci)
	}
	if ci.Hi-ci.Lo > 2 {
		t.Fatalf("interval suspiciously wide: %+v", ci)
	}
	if _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err != ErrNoData {
		t.Error("empty input should fail")
	}
	if _, err := BootstrapMeanCI(xs, 0, 0.95, 1); err == nil {
		t.Error("0 resamples should fail")
	}
	if _, err := BootstrapMeanCI(xs, 10, 1.5, 1); err == nil {
		t.Error("bad level should fail")
	}
}

func TestLinearRegressionRecoversLine(t *testing.T) {
	var x, y []float64
	for i := 0; i < 50; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3+2*xi)
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-3) > 1e-9 || math.Abs(fit.Beta-2) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if p := fit.Predict(10); math.Abs(p-23) > 1e-9 {
		t.Fatalf("predict = %v", p)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err != ErrNoData {
		t.Error("single point should fail with ErrNoData")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant predictor should fail")
	}
}

func TestLogistic(t *testing.T) {
	if Logistic(0) != 0.5 {
		t.Fatal("Logistic(0) != 0.5")
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := Logistic(x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBradleyTerryOrdersPlayers(t *testing.T) {
	// Player 0 beats 1 80% of the time, 1 beats 2 80% of the time.
	wins := [][]float64{
		{0, 80, 95},
		{20, 0, 80},
		{5, 20, 0},
	}
	s, err := BradleyTerry(wins, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !(s[0] > s[1] && s[1] > s[2]) {
		t.Fatalf("strength order wrong: %v", s)
	}
	wr := WinRate(s, 0, 1)
	if wr < 0.7 || wr > 0.9 {
		t.Fatalf("winrate(0,1) = %v, want near 0.8", wr)
	}
}

func TestBradleyTerryErrors(t *testing.T) {
	if _, err := BradleyTerry(nil, 10); err != ErrNoData {
		t.Error("empty should fail")
	}
	if _, err := BradleyTerry([][]float64{{0, 1}}, 10); err == nil {
		t.Error("non-square should fail")
	}
	if _, err := BradleyTerry([][]float64{{0, 0}, {0, 0}}, 10); err == nil {
		t.Error("all-zero should fail")
	}
	if _, err := BradleyTerry([][]float64{{0, -1}, {1, 0}}, 10); err == nil {
		t.Error("negative counts should fail")
	}
}

func TestBradleyTerryNormalised(t *testing.T) {
	wins := [][]float64{{0, 30}, {10, 0}}
	s, err := BradleyTerry(wins, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]+s[1]) > 1e-6 {
		t.Fatalf("log strengths not centred: %v", s)
	}
}
