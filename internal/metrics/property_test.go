package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWinRateComplementProperty: implied win rates from any fitted
// Bradley-Terry model are complementary.
func TestWinRateComplementProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 2
		rng := rand.New(rand.NewSource(seed))
		wins := make([][]float64, n)
		for i := range wins {
			wins[i] = make([]float64, n)
			for j := range wins[i] {
				if i != j {
					wins[i][j] = float64(rng.Intn(20) + 1)
				}
			}
		}
		s, err := BradleyTerry(wins, 100)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(WinRate(s, i, j)+WinRate(s, j, i)-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBradleyTerryOrderingProperty: in a two-player model, more wins
// means higher strength.
func TestBradleyTerryOrderingProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%50) + 1
		b := float64(bRaw%50) + 1
		s, err := BradleyTerry([][]float64{{0, a}, {b, 0}}, 200)
		if err != nil {
			return false
		}
		switch {
		case a > b:
			return s[0] > s[1]
		case b > a:
			return s[1] > s[0]
		default:
			return math.Abs(s[0]-s[1]) < 1e-6
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileMonotoneProperty: quantiles are monotone in q and bounded
// by the sample extremes.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := q
			if qq > 1 {
				qq = 1
			}
			v, err := Quantile(xs, qq)
			if err != nil {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBootstrapCIBracketsProperty: the bootstrap interval always
// brackets values within the sample range.
func TestBootstrapCIBracketsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		ci, err := BootstrapMeanCI(xs, 200, 0.9, seed)
		if err != nil {
			return false
		}
		return ci.Lo >= lo-1e-9 && ci.Hi <= hi+1e-9 && ci.Lo <= ci.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
