package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Elo maintains online pairwise ratings — the sequential alternative to
// the batch Bradley–Terry fit, as used by live arena leaderboards. New
// players start at the base rating.
type Elo struct {
	k       float64
	base    float64
	ratings map[string]float64
	games   map[string]int
}

// NewElo creates a rating table with update factor k (typical: 16-32)
// and base rating 1000.
// It returns an error for a non-positive k.
func NewElo(k float64) (*Elo, error) {
	if k <= 0 {
		return nil, fmt.Errorf("metrics: elo K must be positive, got %v", k)
	}
	return &Elo{k: k, base: 1000, ratings: make(map[string]float64), games: make(map[string]int)}, nil
}

// Rating returns a player's current rating (base if never seen).
func (e *Elo) Rating(name string) float64 {
	if r, ok := e.ratings[name]; ok {
		return r
	}
	return e.base
}

// Games returns how many games a player has recorded.
func (e *Elo) Games(name string) int { return e.games[name] }

// Expected returns the expected score of a against b (probability-like,
// 0.5 for equal ratings).
func (e *Elo) Expected(a, b string) float64 {
	return 1 / (1 + math.Pow(10, (e.Rating(b)-e.Rating(a))/400))
}

// Record updates ratings after winner beat loser.
func (e *Elo) Record(winner, loser string) { e.update(winner, loser, 1) }

// RecordDraw updates ratings after a drawn game.
func (e *Elo) RecordDraw(a, b string) { e.update(a, b, 0.5) }

func (e *Elo) update(a, b string, scoreA float64) {
	ea := e.Expected(a, b)
	ra, rb := e.Rating(a), e.Rating(b)
	e.ratings[a] = ra + e.k*(scoreA-ea)
	e.ratings[b] = rb + e.k*((1-scoreA)-(1-ea))
	e.games[a]++
	e.games[b]++
}

// Standing is one leaderboard row.
type Standing struct {
	Name   string
	Rating float64
	Games  int
}

// Standings returns all players sorted by rating, ties broken by name.
func (e *Elo) Standings() []Standing {
	out := make([]Standing, 0, len(e.ratings))
	for n, r := range e.ratings {
		out = append(out, Standing{Name: n, Rating: r, Games: e.games[n]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rating != out[j].Rating {
			return out[i].Rating > out[j].Rating
		}
		return out[i].Name < out[j].Name
	})
	return out
}
