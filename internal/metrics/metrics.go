// Package metrics provides the statistical helpers shared by the
// evaluation harness: summary statistics, bootstrap confidence intervals,
// simple linear regression (for the length-controlled win-rate
// correction), and Bradley–Terry strength fitting (for Arena-Hard style
// aggregation).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned by estimators given an empty sample.
var ErrNoData = errors.New("metrics: no data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 when n < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0..1) of xs by linear interpolation.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point, Lo, Hi float64
}

// BootstrapMeanCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap with the given number of resamples and
// confidence level (e.g. 0.95).
func BootstrapMeanCI(xs []float64, resamples int, level float64, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrNoData
	}
	if resamples < 1 {
		return Interval{}, fmt.Errorf("metrics: resamples must be >= 1, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("metrics: level must be in (0,1), got %v", level)
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		var s float64
		for i := 0; i < len(xs); i++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2
	lo, err := Quantile(means, alpha)
	if err != nil {
		return Interval{}, err
	}
	hi, err := Quantile(means, 1-alpha)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Point: Mean(xs), Lo: lo, Hi: hi}, nil
}

// LinFit holds the coefficients of y = Alpha + Beta*x.
type LinFit struct {
	Alpha, Beta float64
}

// LinearRegression fits ordinary least squares y = a + b*x.
// It returns an error when fewer than two points are given or x is
// constant.
func LinearRegression(x, y []float64) (LinFit, error) {
	if len(x) != len(y) {
		return LinFit{}, fmt.Errorf("metrics: x and y lengths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) < 2 {
		return LinFit{}, ErrNoData
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return LinFit{}, errors.New("metrics: constant predictor")
	}
	b := sxy / sxx
	return LinFit{Alpha: my - b*mx, Beta: b}, nil
}

// Predict evaluates the fitted line at x.
func (f LinFit) Predict(x float64) float64 { return f.Alpha + f.Beta*x }

// Logistic is the standard sigmoid.
func Logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// BradleyTerry fits player strengths from a pairwise win matrix using the
// classic MM algorithm. wins[i][j] is the number of times i beat j.
// Strengths are normalised to mean 0 in log space.
// It returns an error when the matrix is not square or all-zero.
func BradleyTerry(wins [][]float64, iters int) ([]float64, error) {
	n := len(wins)
	if n == 0 {
		return nil, ErrNoData
	}
	var total float64
	for i := range wins {
		if len(wins[i]) != n {
			return nil, fmt.Errorf("metrics: wins matrix row %d has %d cols, want %d", i, len(wins[i]), n)
		}
		for j := range wins[i] {
			if wins[i][j] < 0 {
				return nil, fmt.Errorf("metrics: negative win count at (%d,%d)", i, j)
			}
			total += wins[i][j]
		}
	}
	if total == 0 {
		return nil, errors.New("metrics: empty win matrix")
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			var wi float64
			var denom float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				games := wins[i][j] + wins[j][i]
				if games == 0 {
					continue
				}
				wi += wins[i][j]
				denom += games / (p[i] + p[j])
			}
			if denom == 0 {
				next[i] = p[i]
			} else {
				next[i] = wi / denom
			}
			if next[i] < 1e-9 {
				next[i] = 1e-9
			}
		}
		p = next
	}
	// Normalise in log space.
	var sum float64
	logs := make([]float64, n)
	for i, v := range p {
		logs[i] = math.Log(v)
		sum += logs[i]
	}
	mean := sum / float64(n)
	for i := range logs {
		logs[i] -= mean
	}
	return logs, nil
}

// WinRate converts Bradley–Terry log-strengths into the expected win
// probability of player i against player j.
func WinRate(logStrengths []float64, i, j int) float64 {
	return Logistic(logStrengths[i] - logStrengths[j])
}
