// Package tokenizer implements a byte-pair-encoding (BPE) subword
// tokenizer of the kind every chat LLM in the paper's roster uses. The
// chat-API layer (internal/chatapi) uses it for token accounting — prompt
// and completion token counts, usage-based limits — which is how the
// plug-and-play deployment of §3.4 meters the extra tokens PAS adds to
// each request.
//
// The implementation is the classic Sennrich et al. algorithm: train by
// repeatedly merging the most frequent adjacent symbol pair; encode by
// replaying merges in learned order. Training and encoding are
// deterministic (ties break lexicographically).
package tokenizer

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/textkit"
)

// endOfWord marks word boundaries inside the symbol stream so merges
// never cross words.
const endOfWord = "</w>"

// Config controls training.
type Config struct {
	// VocabSize is the target vocabulary size (base symbols + merges).
	VocabSize int
	// MinPairFreq stops merging when the best pair is rarer than this.
	MinPairFreq int
}

// DefaultConfig returns a vocabulary suitable for the synthetic corpus.
func DefaultConfig() Config { return Config{VocabSize: 2048, MinPairFreq: 2} }

// Tokenizer is a trained BPE model.
type Tokenizer struct {
	merges []mergeRule
	rank   map[[2]string]int // pair -> merge priority
	vocab  map[string]int    // token -> id
	tokens []string          // id -> token
}

type mergeRule struct {
	Left, Right string
}

// ErrEmptyCorpus is returned when training with no usable text.
var ErrEmptyCorpus = errors.New("tokenizer: empty corpus")

// Train learns a BPE vocabulary from the corpus.
func Train(corpus []string, cfg Config) (*Tokenizer, error) {
	if cfg.VocabSize < 16 {
		return nil, fmt.Errorf("tokenizer: VocabSize must be >= 16, got %d", cfg.VocabSize)
	}
	if cfg.MinPairFreq < 1 {
		return nil, fmt.Errorf("tokenizer: MinPairFreq must be >= 1, got %d", cfg.MinPairFreq)
	}

	// Word frequency table over the whole corpus.
	wordFreq := make(map[string]int)
	for _, doc := range corpus {
		for _, w := range textkit.Words(doc) {
			wordFreq[w]++
		}
	}
	if len(wordFreq) == 0 {
		return nil, ErrEmptyCorpus
	}

	// Each distinct word becomes a symbol sequence: runes + </w>.
	type entry struct {
		symbols []string
		freq    int
	}
	entries := make([]entry, 0, len(wordFreq))
	words := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic iteration
	base := make(map[string]bool)
	for _, w := range words {
		var syms []string
		for _, r := range w {
			s := string(r)
			syms = append(syms, s)
			base[s] = true
		}
		syms = append(syms, endOfWord)
		entries = append(entries, entry{symbols: syms, freq: wordFreq[w]})
	}
	base[endOfWord] = true

	t := &Tokenizer{rank: make(map[[2]string]int), vocab: make(map[string]int)}
	addTok := func(s string) {
		if _, ok := t.vocab[s]; !ok {
			t.vocab[s] = len(t.tokens)
			t.tokens = append(t.tokens, s)
		}
	}
	baseSyms := make([]string, 0, len(base))
	for s := range base {
		baseSyms = append(baseSyms, s)
	}
	sort.Strings(baseSyms)
	for _, s := range baseSyms {
		addTok(s)
	}

	// Merge loop.
	for len(t.tokens) < cfg.VocabSize {
		pairFreq := make(map[[2]string]int)
		for _, e := range entries {
			for i := 0; i+1 < len(e.symbols); i++ {
				pairFreq[[2]string{e.symbols[i], e.symbols[i+1]}] += e.freq
			}
		}
		best, bestFreq := [2]string{}, 0
		for p, f := range pairFreq {
			if f > bestFreq || (f == bestFreq && lessPair(p, best)) {
				best, bestFreq = p, f
			}
		}
		if bestFreq < cfg.MinPairFreq {
			break
		}
		merged := best[0] + best[1]
		t.rank[best] = len(t.merges)
		t.merges = append(t.merges, mergeRule{Left: best[0], Right: best[1]})
		addTok(merged)
		for i := range entries {
			entries[i].symbols = applyMerge(entries[i].symbols, best, merged)
		}
	}
	return t, nil
}

func lessPair(a, b [2]string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func applyMerge(syms []string, pair [2]string, merged string) []string {
	out := syms[:0]
	for i := 0; i < len(syms); i++ {
		if i+1 < len(syms) && syms[i] == pair[0] && syms[i+1] == pair[1] {
			out = append(out, merged)
			i++
		} else {
			out = append(out, syms[i])
		}
	}
	return out
}

// VocabSize returns the number of known tokens.
func (t *Tokenizer) VocabSize() int { return len(t.tokens) }

// Encode tokenises text into vocabulary ids. Unknown symbols (characters
// never seen in training) are skipped, like an <unk> drop.
func (t *Tokenizer) Encode(text string) []int {
	var ids []int
	for _, w := range textkit.Words(text) {
		for _, tok := range t.encodeWord(w) {
			if id, ok := t.vocab[tok]; ok {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// EncodeTokens returns the subword strings rather than ids, for
// inspection and tests.
func (t *Tokenizer) EncodeTokens(text string) []string {
	var out []string
	for _, w := range textkit.Words(text) {
		out = append(out, t.encodeWord(w)...)
	}
	return out
}

// encodeWord replays the learned merges on one word, greedily applying
// the lowest-rank applicable merge, exactly like training did.
func (t *Tokenizer) encodeWord(w string) []string {
	var syms []string
	for _, r := range w {
		syms = append(syms, string(r))
	}
	syms = append(syms, endOfWord)
	for {
		bestRank, bestAt := -1, -1
		for i := 0; i+1 < len(syms); i++ {
			if r, ok := t.rank[[2]string{syms[i], syms[i+1]}]; ok {
				if bestRank == -1 || r < bestRank {
					bestRank, bestAt = r, i
				}
			}
		}
		if bestAt == -1 {
			return syms
		}
		merged := syms[bestAt] + syms[bestAt+1]
		syms = append(syms[:bestAt+1], syms[bestAt+2:]...)
		syms[bestAt] = merged
	}
}

// Decode reassembles ids into text. Word boundaries come from the </w>
// markers; output is lower-case space-joined words (the tokenizer, like
// the rest of the text substrate, is casefolding).
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id < 0 || id >= len(t.tokens) {
			continue
		}
		b.WriteString(t.tokens[id])
	}
	return strings.TrimSpace(strings.ReplaceAll(b.String(), endOfWord, " "))
}

// CountTokens returns the number of BPE tokens in text — the unit the
// chat API meters usage in.
func (t *Tokenizer) CountTokens(text string) int {
	n := 0
	for _, w := range textkit.Words(text) {
		n += len(t.encodeWord(w))
	}
	return n
}

// persisted is the on-disk format.
type persisted struct {
	Format string      `json:"format"`
	Merges []mergeRule `json:"merges"`
	Tokens []string    `json:"tokens"`
}

const formatV1 = "pas-bpe-v1"

// Save writes the tokenizer as JSON.
func (t *Tokenizer) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(persisted{Format: formatV1, Merges: t.merges, Tokens: t.tokens}); err != nil {
		return fmt.Errorf("tokenizer: encoding: %w", err)
	}
	return bw.Flush()
}

// Load reads a tokenizer saved with Save.
func Load(r io.Reader) (*Tokenizer, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("tokenizer: decoding: %w", err)
	}
	if p.Format != formatV1 {
		return nil, fmt.Errorf("tokenizer: unsupported format %q", p.Format)
	}
	t := &Tokenizer{merges: p.Merges, rank: make(map[[2]string]int, len(p.Merges)), vocab: make(map[string]int, len(p.Tokens)), tokens: p.Tokens}
	for i, m := range p.Merges {
		t.rank[[2]string{m.Left, m.Right}] = i
	}
	for i, tok := range p.Tokens {
		if tok == "" {
			return nil, fmt.Errorf("tokenizer: empty token at id %d", i)
		}
		if _, dup := t.vocab[tok]; dup {
			return nil, fmt.Errorf("tokenizer: duplicate token %q", tok)
		}
		t.vocab[tok] = i
	}
	return t, nil
}

// SaveFile writes the tokenizer to path.
func (t *Tokenizer) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tokenizer: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("tokenizer: closing %s: %w", path, cerr)
		}
	}()
	return t.Save(f)
}

// LoadFile reads a tokenizer from path.
func LoadFile(path string) (*Tokenizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tokenizer: %w", err)
	}
	defer f.Close()
	return Load(f)
}
