package tokenizer

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func trainingCorpus(t testing.TB) []string {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = 1500
	cfg.Seed = 5
	pool, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, len(pool))
	for i, p := range pool {
		texts[i] = p.Text
	}
	return texts
}

func trained(t testing.TB) *Tokenizer {
	t.Helper()
	tok, err := Train(trainingCorpus(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train([]string{"hello"}, Config{VocabSize: 4, MinPairFreq: 1}); err == nil {
		t.Error("tiny vocab should fail")
	}
	if _, err := Train([]string{"hello"}, Config{VocabSize: 100, MinPairFreq: 0}); err == nil {
		t.Error("MinPairFreq 0 should fail")
	}
	if _, err := Train(nil, DefaultConfig()); err != ErrEmptyCorpus {
		t.Error("empty corpus should fail with ErrEmptyCorpus")
	}
	if _, err := Train([]string{"!!!", "???"}, DefaultConfig()); err != ErrEmptyCorpus {
		t.Error("punctuation-only corpus should fail")
	}
}

func TestVocabBounded(t *testing.T) {
	tok := trained(t)
	if tok.VocabSize() > DefaultConfig().VocabSize {
		t.Fatalf("vocab %d exceeds configured %d", tok.VocabSize(), DefaultConfig().VocabSize)
	}
	if tok.VocabSize() < 100 {
		t.Fatalf("vocab suspiciously small: %d", tok.VocabSize())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := trained(t)
	texts := []string{
		"write a python function that implements a rate limiter",
		"explain how photosynthesis works",
		"translate good morning into french",
	}
	for _, text := range texts {
		ids := tok.Encode(text)
		if len(ids) == 0 {
			t.Fatalf("no tokens for %q", text)
		}
		got := tok.Decode(ids)
		if got != text {
			t.Errorf("round trip: %q -> %q", text, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	tok := trained(t)
	// For any ASCII-words text made of training-corpus letters, decode
	// must reproduce the normalised words.
	f := func(a, b, c uint8) bool {
		words := []string{"write", "function", "explain", "translate", "summarize", "the", "ideas"}
		text := words[int(a)%len(words)] + " " + words[int(b)%len(words)] + " " + words[int(c)%len(words)]
		return tok.Decode(tok.Encode(text)) == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommonWordsCompress(t *testing.T) {
	tok := trained(t)
	// A frequent corpus word should need far fewer tokens than letters.
	n := tok.CountTokens("function")
	if n > 4 {
		t.Fatalf("'function' took %d tokens; BPE should compress frequent words", n)
	}
	// A rare letter jumble should stay near character level.
	m := tok.CountTokens("zqxvkj")
	if m < 4 {
		t.Fatalf("rare jumble compressed too well: %d tokens", m)
	}
}

func TestCountTokensMatchesEncode(t *testing.T) {
	tok := trained(t)
	text := "summarize this long article about coral reefs into key points"
	if got, want := tok.CountTokens(text), len(tok.EncodeTokens(text)); got != want {
		t.Fatalf("CountTokens %d != len(EncodeTokens) %d", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := trained(t)
	b := trained(t)
	text := "analyze the trade offs of remote work versus office work"
	ai, bi := a.Encode(text), b.Encode(text)
	if len(ai) != len(bi) {
		t.Fatal("training not deterministic")
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestUnknownCharactersSkipped(t *testing.T) {
	tok, err := Train([]string{"aa ab ba bb aa ab"}, Config{VocabSize: 32, MinPairFreq: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := tok.Encode("aa zz")
	if got := tok.Decode(ids); got != "aa" {
		t.Fatalf("unknown chars should drop: got %q", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tok := trained(t)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	text := "give me advice on negotiating a salary offer"
	if tok.Decode(tok.Encode(text)) != got.Decode(got.Encode(text)) {
		t.Fatal("loaded tokenizer differs")
	}
	if got.VocabSize() != tok.VocabSize() {
		t.Fatal("vocab size lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := Load(strings.NewReader(`{"format":"other"}`)); err == nil {
		t.Error("wrong format should fail")
	}
	if _, err := Load(strings.NewReader(`{"format":"pas-bpe-v1","tokens":["a","a"]}`)); err == nil {
		t.Error("duplicate tokens should fail")
	}
	if _, err := Load(strings.NewReader(`{"format":"pas-bpe-v1","tokens":[""]}`)); err == nil {
		t.Error("empty token should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tok := trained(t)
	path := filepath.Join(t.TempDir(), "bpe.json")
	if err := tok.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDecodeIgnoresBadIDs(t *testing.T) {
	tok := trained(t)
	if got := tok.Decode([]int{-1, 1 << 30}); got != "" {
		t.Fatalf("bad ids should decode to nothing, got %q", got)
	}
}

func BenchmarkTrain(b *testing.B) {
	texts := trainingCorpus(b)
	cfg := Config{VocabSize: 512, MinPairFreq: 2}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(texts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := trained(b)
	text := "write a python function that implements an LRU cache and explain the algorithm"
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.Encode(text)
	}
}

// FuzzEncodeDecode: encoding arbitrary text must never panic, and
// decoding the result must reproduce exactly the in-vocabulary words.
func FuzzEncodeDecode(f *testing.F) {
	tok, err := Train([]string{
		"write a python function to sort a list quickly",
		"explain how tides form and why they matter",
		"translate good morning into french please",
	}, Config{VocabSize: 256, MinPairFreq: 1})
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range []string{"", "write python", "zzz qqq", "a\x00b", "sort the list"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ids := tok.Encode(s)
		for _, id := range ids {
			if id < 0 || id >= tok.VocabSize() {
				t.Fatalf("id %d out of vocab", id)
			}
		}
		_ = tok.Decode(ids)
		if tok.CountTokens(s) < 0 {
			t.Fatal("negative token count")
		}
	})
}
