// Package embed implements the sentence-embedding substrate that stands in
// for the SimCSE/bge embedding model the paper uses in §3.1. Embeddings are
// produced by the hashing trick over word unigrams, word bigrams, and
// character trigrams, weighted by a corpus-fitted IDF table and L2
// normalised. The construction preserves the two properties the curation
// pipeline needs from a real sentence encoder:
//
//   - near-duplicate prompts (shared phrasing) map to high-cosine vectors, and
//   - prompts about different intents land far apart.
package embed

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/textkit"
)

// Vector is a dense embedding. All vectors from one Model share a dimension.
type Vector []float32

// Dot returns the inner product of v and w. Vectors must have equal length.
func (v Vector) Dot(w Vector) float64 {
	var s float64
	for i := range v {
		s += float64(v[i]) * float64(w[i])
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Cosine returns the cosine similarity of v and w, or 0 when either vector
// is zero.
func (v Vector) Cosine(w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Config controls the feature space of a Model.
type Config struct {
	// Dim is the embedding dimension. Typical values are 128-1024.
	Dim int
	// Seed separates the hash space of independent models.
	Seed uint64
	// UseBigrams adds word-bigram features (on by default via DefaultConfig).
	UseBigrams bool
	// UseCharTrigrams adds character-trigram subword features.
	UseCharTrigrams bool
}

// DefaultConfig returns the configuration used across the PAS pipeline:
// 256 dimensions with all feature families enabled.
func DefaultConfig() Config {
	return Config{Dim: 256, Seed: 0x5ebe, UseBigrams: true, UseCharTrigrams: true}
}

// Model is a deterministic sentence encoder. It may be used zero-shot
// (uniform feature weights) or fitted on a corpus to learn IDF weights,
// mirroring how a pretrained encoder has corpus-level priors baked in.
//
// A Model is safe for concurrent use after Fit (or if never fitted).
type Model struct {
	cfg Config
	idf map[string]float64 // feature -> idf weight; nil means uniform
	n   int                // documents fitted
}

// New creates a Model with the given configuration.
// It returns an error if cfg.Dim is not positive.
func New(cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("embed: dimension must be positive, got %d", cfg.Dim)
	}
	return &Model{cfg: cfg}, nil
}

// MustNew is New for configurations known to be valid at compile time.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// ErrEmptyCorpus is returned by Fit when no documents are supplied.
var ErrEmptyCorpus = errors.New("embed: empty corpus")

// Fit learns IDF weights from a corpus. Calling Fit replaces any previous
// fit. Features absent from the corpus receive the maximum IDF when later
// encoded, matching standard smoothed-IDF behaviour.
func (m *Model) Fit(corpus []string) error {
	if len(corpus) == 0 {
		return ErrEmptyCorpus
	}
	df := make(map[string]int)
	for _, doc := range corpus {
		seen := make(map[string]bool)
		for _, f := range m.features(doc) {
			if !seen[f] {
				seen[f] = true
				df[f]++
			}
		}
	}
	m.n = len(corpus)
	m.idf = make(map[string]float64, len(df))
	for f, d := range df {
		m.idf[f] = math.Log(float64(1+m.n) / float64(1+d))
	}
	return nil
}

// Fitted reports whether the model has learned corpus IDF weights.
func (m *Model) Fitted() bool { return m.idf != nil }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.cfg.Dim }

// Encode embeds text. The zero text embeds to the zero vector.
func (m *Model) Encode(text string) Vector {
	v := make(Vector, m.cfg.Dim)
	feats := m.features(text)
	if len(feats) == 0 {
		return v
	}
	// Term frequencies within the document, sub-linearly damped. Keys are
	// visited in sorted order: float accumulation is not associative, so
	// map-order iteration would make embeddings run-dependent.
	tf := make(map[string]int, len(feats))
	for _, f := range feats {
		tf[f]++
	}
	keys := make([]string, 0, len(tf))
	for f := range tf {
		keys = append(keys, f)
	}
	sort.Strings(keys)
	for _, f := range keys {
		c := tf[f]
		w := 1 + math.Log(float64(c))
		if m.idf != nil {
			if idf, ok := m.idf[f]; ok {
				w *= idf
			} else {
				w *= math.Log(float64(1 + m.n)) // unseen feature: max idf
			}
		}
		b := textkit.Bucket(f, m.cfg.Seed, m.cfg.Dim)
		v[b] += float32(w * textkit.Sign(f, m.cfg.Seed+1))
	}
	normalize(v)
	return v
}

// EncodeBatch embeds each text in order.
func (m *Model) EncodeBatch(texts []string) []Vector {
	out := make([]Vector, len(texts))
	for i, t := range texts {
		out[i] = m.Encode(t)
	}
	return out
}

func (m *Model) features(text string) []string {
	words := textkit.Words(text)
	feats := make([]string, 0, len(words)*3)
	for _, w := range words {
		feats = append(feats, "w:"+w)
	}
	if m.cfg.UseBigrams {
		for i := 0; i+1 < len(words); i++ {
			feats = append(feats, "b:"+words[i]+" "+words[i+1])
		}
	}
	if m.cfg.UseCharTrigrams {
		for _, g := range textkit.CharNGrams(text, 3) {
			feats = append(feats, "c:"+g)
		}
	}
	return feats
}

func normalize(v Vector) {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}
