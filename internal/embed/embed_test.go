package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadDim(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for Dim=0")
	}
	if _, err := New(Config{Dim: -4}); err == nil {
		t.Fatal("expected error for negative Dim")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := newTestModel(t)
	a := m.Encode("write a binary search in go")
	b := m.Encode("write a binary search in go")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic embedding at dim %d", i)
		}
	}
}

func TestEncodeUnitNorm(t *testing.T) {
	m := newTestModel(t)
	v := m.Encode("how do I boil water quickly")
	if n := v.Norm(); math.Abs(n-1) > 1e-5 {
		t.Fatalf("norm = %v, want 1", n)
	}
}

func TestEmptyTextIsZeroVector(t *testing.T) {
	m := newTestModel(t)
	v := m.Encode("")
	if v.Norm() != 0 {
		t.Fatal("empty text should embed to zero vector")
	}
	if c := v.Cosine(m.Encode("hello")); c != 0 {
		t.Fatalf("cosine with zero vector = %v, want 0", c)
	}
}

func TestNearDuplicatesScoreHigherThanUnrelated(t *testing.T) {
	m := newTestModel(t)
	base := m.Encode("please explain how photosynthesis works in plants")
	dup := m.Encode("please explain how photosynthesis works in the plants")
	other := m.Encode("implement a thread safe queue in go with mutexes")
	simDup := base.Cosine(dup)
	simOther := base.Cosine(other)
	if simDup <= simOther {
		t.Fatalf("dup sim %.3f should exceed unrelated sim %.3f", simDup, simOther)
	}
	if simDup < 0.8 {
		t.Fatalf("near-duplicate similarity too low: %.3f", simDup)
	}
}

func TestFitChangesWeighting(t *testing.T) {
	m := newTestModel(t)
	corpus := []string{
		"please write code", "please write a poem", "please summarize this",
		"please translate this", "quantum entanglement basics",
	}
	unfittedSim := m.Encode("please write code").Cosine(m.Encode("please write a poem"))
	if err := m.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() {
		t.Fatal("model should report fitted")
	}
	fittedSim := m.Encode("please write code").Cosine(m.Encode("please write a poem"))
	// IDF downweights the ubiquitous "please", so the shared-boilerplate
	// similarity should drop after fitting.
	if fittedSim >= unfittedSim {
		t.Fatalf("fit did not downweight common features: before %.3f after %.3f", unfittedSim, fittedSim)
	}
}

func TestFitEmptyCorpus(t *testing.T) {
	m := newTestModel(t)
	if err := m.Fit(nil); err != ErrEmptyCorpus {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestEncodeBatchOrder(t *testing.T) {
	m := newTestModel(t)
	texts := []string{"alpha", "beta", "gamma"}
	vs := m.EncodeBatch(texts)
	if len(vs) != 3 {
		t.Fatalf("batch size = %d", len(vs))
	}
	for i, text := range texts {
		if c := vs[i].Cosine(m.Encode(text)); c < 0.999 {
			t.Errorf("batch element %d mismatches single encode (cos %.4f)", i, c)
		}
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	m := MustNew(Config{Dim: 64, Seed: 9, UseBigrams: true, UseCharTrigrams: true})
	f := func(a, b string) bool {
		c := m.Encode(a).Cosine(m.Encode(b))
		return c >= -1.0001 && c <= 1.0001 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfCosineIsOneProperty(t *testing.T) {
	m := newTestModel(t)
	f := func(s string) bool {
		v := m.Encode(s)
		if v.Norm() == 0 {
			return v.Cosine(v) == 0
		}
		return math.Abs(v.Cosine(v)-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedSeparatesModels(t *testing.T) {
	a := MustNew(Config{Dim: 128, Seed: 1, UseBigrams: true})
	b := MustNew(Config{Dim: 128, Seed: 2, UseBigrams: true})
	va, vb := a.Encode("same text"), b.Encode("same text")
	if va.Cosine(vb) > 0.9 {
		t.Fatal("different seeds should give different feature spaces")
	}
}

func BenchmarkEncode(b *testing.B) {
	m := MustNew(DefaultConfig())
	text := "write a function that parses json and returns a map of string to interface"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Encode(text)
	}
}
