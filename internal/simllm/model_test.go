package simllm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/facet"
	"repro/internal/textkit"
)

func TestLookupProfile(t *testing.T) {
	p, err := LookupProfile(GPT4Turbo)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != GPT4Turbo {
		t.Fatalf("name = %s", p.Name)
	}
	if _, err := LookupProfile("gpt-9"); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestRosterContainsMainModels(t *testing.T) {
	roster := map[string]bool{}
	for _, n := range Roster() {
		roster[n] = true
	}
	for _, n := range MainModels() {
		if !roster[n] {
			t.Errorf("main model %s missing from roster", n)
		}
	}
	if len(MainModels()) != 6 {
		t.Errorf("table 1 has 6 main models, got %d", len(MainModels()))
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Name: "", Quality: 0.5, Obedience: 0.5, TrapResistance: 0.5, Verbosity: 1},
		{Name: "x", Quality: 1.5, Obedience: 0.5, TrapResistance: 0.5, Verbosity: 1},
		{Name: "x", Quality: 0.5, Obedience: -0.1, TrapResistance: 0.5, Verbosity: 1},
		{Name: "x", Quality: 0.5, Obedience: 0.5, TrapResistance: 0.5, Verbosity: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should be invalid", i)
		}
	}
	for _, n := range Roster() {
		p, _ := LookupProfile(n)
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", n, err)
		}
	}
}

func TestRespondDeterministic(t *testing.T) {
	m := MustModel(GPT40613)
	prompt := "Explain how photosynthesis works."
	a := m.Respond(prompt, Options{Salt: "s1"})
	b := m.Respond(prompt, Options{Salt: "s1"})
	if a != b {
		t.Fatal("same input+salt must give same output")
	}
	c := m.Respond(prompt, Options{Salt: "s2"})
	if a == c {
		t.Fatal("different salt should usually change the output")
	}
}

func TestChatRoles(t *testing.T) {
	m := MustModel(GPT35Turbo)
	if _, err := m.Chat(nil, Options{}); err == nil {
		t.Fatal("empty messages should error")
	}
	if _, err := m.Chat([]Message{{Role: "alien", Content: "hi"}}, Options{}); err == nil {
		t.Fatal("unknown role should error")
	}
	out, err := m.Chat([]Message{
		{Role: "system", Content: "Be helpful."},
		{Role: "user", Content: "Explain the history of the silk road."},
	}, Options{Salt: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("empty response")
	}
}

// TestDirectiveSteering is the central mechanism check: appending a
// complementary prompt demanding a facet must raise the rate at which
// that facet is delivered in the response text.
func TestDirectiveSteering(t *testing.T) {
	m := MustModel(GPT40613)
	prompt := "Tell me about keeping houseplants alive."
	aug := facet.RenderDirectives([]facet.Facet{facet.Examples}, "steer")

	delivered := func(input string) int {
		count := 0
		for i := 0; i < 40; i++ {
			resp := m.Respond(input, Options{Salt: fmt.Sprintf("s%d", i)})
			if facet.DetectDelivered(resp)[facet.Examples] > 0 {
				count++
			}
		}
		return count
	}
	bare := delivered(prompt)
	steered := delivered(prompt + "\n" + aug)
	if steered <= bare {
		t.Fatalf("steering failed: examples delivered bare=%d/40 steered=%d/40", bare, steered)
	}
	if steered < 30 {
		t.Fatalf("obedient model should usually deliver the demanded facet: %d/40", steered)
	}
}

func TestTrapWarningHelps(t *testing.T) {
	m := MustModel(GPT35Turbo) // low trap resistance
	prompt := "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"
	tr, ok := facet.FindTrap(prompt)
	if !ok {
		t.Fatal("setup: trap not found")
	}
	warn := facet.RenderDirectives([]facet.Facet{facet.TrapAware}, "warn")

	rightRate := func(input string) int {
		right := 0
		for i := 0; i < 40; i++ {
			resp := m.Respond(input, Options{Salt: fmt.Sprintf("t%d", i)})
			if tr.ClaimsRight(resp) {
				right++
			}
		}
		return right
	}
	bare := rightRate(prompt)
	warned := rightRate(prompt + "\n" + warn)
	if bare > 15 {
		t.Fatalf("weak model should usually fall into the trap unaided: right %d/40", bare)
	}
	if warned < 30 {
		t.Fatalf("warned model should usually avoid the trap: right %d/40", warned)
	}
}

func TestTrapResponseStatesOneClaim(t *testing.T) {
	m := MustModel(GPT4Turbo)
	prompt := "A quick trick puzzle for you: heavier a kilogram of steel or a kilogram of feathers. What do you say?"
	tr, ok := facet.FindTrap(prompt)
	if !ok {
		t.Fatal("setup: trap not found")
	}
	for i := 0; i < 10; i++ {
		resp := m.Respond(prompt, Options{Salt: fmt.Sprintf("c%d", i)})
		if tr.ClaimsRight(resp) == tr.ClaimsWrong(resp) {
			t.Fatalf("response must state exactly one claim: %q", resp)
		}
	}
}

func TestConcisenessConstraintShortensResponse(t *testing.T) {
	m := MustModel(GPT4Turbo)
	long := m.Respond("Explain the science of fermentation.", Options{Salt: "l"})
	short := m.Respond("Briefly explain the science of fermentation.", Options{Salt: "l"})
	if textkit.WordCount(short) >= textkit.WordCount(long) {
		t.Fatalf("concise response (%d words) not shorter than default (%d words)",
			textkit.WordCount(short), textkit.WordCount(long))
	}
}

func TestConflictingAugCanViolateConstraint(t *testing.T) {
	m := MustModel(GPT35Turbo) // low obedience: often confused by conflicts
	prompt := "Briefly summarize this long article about coral reefs."
	bad := facet.RenderConflicting(facet.Conciseness, "x")
	violations := 0
	for i := 0; i < 40; i++ {
		clean := m.Respond(prompt, Options{Salt: fmt.Sprintf("v%d", i)})
		conflicted := m.Respond(prompt+"\n"+bad, Options{Salt: fmt.Sprintf("v%d", i)})
		if textkit.WordCount(conflicted) > 2*textkit.WordCount(clean) {
			violations++
		}
	}
	if violations < 5 {
		t.Fatalf("conflicting aug should sometimes blow the length budget: %d/40", violations)
	}
}

func TestStrongerModelCoversMoreNeeds(t *testing.T) {
	strong := MustModel(GPT4Turbo)
	weak := MustModel(LLaMA27B)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	needs := facet.AnalyzePrompt(prompt).Needs

	coverage := func(m *Model) float64 {
		var total float64
		for i := 0; i < 30; i++ {
			resp := m.Respond(prompt, Options{Salt: fmt.Sprintf("n%d", i)})
			delivered := facet.DetectDelivered(resp)
			for f, w := range needs {
				if w > 0.4 && delivered[f] > 0 {
					total++
				}
			}
		}
		return total
	}
	cs, cw := coverage(strong), coverage(weak)
	if cs <= cw {
		t.Fatalf("strong model coverage %v should exceed weak %v", cs, cw)
	}
}

func TestScorePromptQualitySeparatesJunk(t *testing.T) {
	m := MustModel(Baichuan13B)
	junk := []string{"asdf asdf asdf", "??", "x", "test test 123 test"}
	real := []string{
		"Write a python function that implements a rate limiter.",
		"Explain how photosynthesis works and the mechanism behind it.",
		"Translate 'good morning, how are you' into french.",
	}
	for _, j := range junk {
		for _, r := range real {
			js, rs := m.ScorePromptQuality(j), m.ScorePromptQuality(r)
			if js >= rs {
				t.Errorf("junk %q scored %.2f >= real %q %.2f", j, js, r, rs)
			}
		}
	}
}

func TestScorePromptQualityBounds(t *testing.T) {
	m := MustModel(Baichuan13B)
	for _, p := range []string{"", "a", strings.Repeat("long prompt with many words ", 40)} {
		s := m.ScorePromptQuality(p)
		if s < 0 || s > 10 {
			t.Errorf("score out of range for %q: %v", p, s)
		}
	}
}

func TestNewRejectsInvalidProfile(t *testing.T) {
	if _, err := New(Profile{Name: "bad", Quality: 2, Verbosity: 1}); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

// TestTemperatureControlsDiversity: higher sampling temperature spreads
// the facet-coverage distribution across resamples.
func TestTemperatureControlsDiversity(t *testing.T) {
	m := MustModel(GPT40613)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	distinct := func(temp float64) int {
		seen := map[string]bool{}
		for i := 0; i < 40; i++ {
			resp := m.Respond(prompt, Options{Temperature: temp, Salt: fmt.Sprintf("t%d", i)})
			delivered := facet.DetectDelivered(resp)
			key := ""
			for f := 0; f < facet.Count; f++ {
				if delivered[f] > 0 {
					key += facet.Facet(f).String() + "|"
				}
			}
			seen[key] = true
		}
		return len(seen)
	}
	cold, hot := distinct(0.05), distinct(1.2)
	if hot <= cold {
		t.Fatalf("temperature has no effect on diversity: cold=%d hot=%d", cold, hot)
	}
}

// TestMaxSectionsCapsResponse: the decoding cap bounds response size.
func TestMaxSectionsCapsResponse(t *testing.T) {
	m := MustModel(GPT4Turbo)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	free := m.Respond(prompt, Options{Salt: "cap"})
	capped := m.Respond(prompt, Options{Salt: "cap", MaxSections: 1})
	if textkit.WordCount(capped) >= textkit.WordCount(free) {
		t.Fatalf("MaxSections did not shorten: %d vs %d words",
			textkit.WordCount(capped), textkit.WordCount(free))
	}
}
