package simllm

import (
	"fmt"
	"testing"

	"repro/internal/facet"
)

func TestSelfConsistentValidation(t *testing.T) {
	m := MustModel(GPT35Turbo)
	if _, err := m.SelfConsistent("hi", 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestSelfConsistentK1EqualsRespond(t *testing.T) {
	m := MustModel(GPT40613)
	p := "Explain the science of fermentation."
	got, err := m.SelfConsistent(p, 1, Options{Salt: "x"})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Respond(p, Options{Salt: "x/sc0"})
	if got != want {
		t.Fatal("k=1 must be a single sample")
	}
}

// TestSelfConsistencyImprovesTrapAccuracy reproduces the related-work
// claim with its real precondition: majority voting amplifies per-sample
// accuracy only when that accuracy exceeds one half (below it, the
// majority converges on the common wrong answer — voting cannot rescue a
// model that is usually wrong). GPT-4-turbo sits just above the
// threshold, so voting over many paths pushes it further up.
func TestSelfConsistencyImprovesTrapAccuracy(t *testing.T) {
	m := MustModel(GPT4Turbo) // per-sample trap accuracy ~0.55
	prompt := "A quick trick puzzle for you: heavier a kilogram of steel or a kilogram of feathers. What do you say?"
	tr, ok := facet.FindTrap(prompt)
	if !ok {
		t.Fatal("trap missing")
	}
	const trials = 60
	single, voted := 0, 0
	for i := 0; i < trials; i++ {
		opt := Options{Salt: fmt.Sprintf("sc/%d", i)}
		if tr.ClaimsRight(m.Respond(prompt, opt)) {
			single++
		}
		out, err := m.SelfConsistent(prompt, 15, opt)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ClaimsRight(out) {
			voted++
		}
	}
	if voted <= single {
		t.Fatalf("self-consistency did not help above threshold: single %d/%d, voted %d/%d",
			single, trials, voted, trials)
	}

	// Below the 0.5 threshold voting must NOT rescue the model — the
	// majority agrees on the canonical wrong answer.
	weak := MustModel(GPT35Turbo) // per-sample trap accuracy ~0.15
	weakVoted := 0
	for i := 0; i < trials; i++ {
		out, err := weak.SelfConsistent(prompt, 15, Options{Salt: fmt.Sprintf("scw/%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if tr.ClaimsRight(out) {
			weakVoted++
		}
	}
	if weakVoted > trials/3 {
		t.Fatalf("voting should not rescue a usually-wrong model: %d/%d right", weakVoted, trials)
	}
}

func TestSelfConsistentOpenEndedPicksCoverage(t *testing.T) {
	m := MustModel(GPT35Turbo)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	needs := facet.AnalyzePrompt(prompt).Needs
	out, err := m.SelfConsistent(prompt, 5, Options{Salt: "cov"})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen sample must cover at least as many needs as the first
	// sample (it was selected for coverage).
	first := m.Respond(prompt, Options{Salt: "cov/sc0"})
	coverage := func(resp string) float64 {
		d := facet.DetectDelivered(resp)
		var s float64
		for f := 0; f < facet.Count; f++ {
			if needs[f] > 0 && d[f] > 0 {
				s += needs[f]
			}
		}
		return s
	}
	if coverage(out) < coverage(first) {
		t.Fatalf("selected sample covers less than sample 0: %.2f < %.2f", coverage(out), coverage(first))
	}
}

func BenchmarkSelfConsistent5(b *testing.B) {
	m := MustModel(Qwen272B)
	prompt := "A quick trick puzzle for you: heavier a kilogram of steel or a kilogram of feathers. What do you say?"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.SelfConsistent(prompt, 5, Options{Salt: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}
