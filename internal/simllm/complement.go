package simllm

import (
	"fmt"

	"repro/internal/facet"
)

// Example is one golden few-shot pair from the paper's D_golden: a user
// prompt and a known-good complementary prompt.
type Example struct {
	Prompt     string
	Complement string
}

// GenerateComplement plays the Figure 4 few-shot call: given a user
// prompt and golden examples, the model produces a complementary prompt.
//
// Raw few-shot generation is imperfect — the paper's motivation for the
// selection-and-regeneration stage. The defect classes mirror the critic
// prompt of Figure 5: directly answering the prompt, conflicting with the
// user's constraints, over-reaching on a simple prompt, or drifting off
// target. Defect rates shrink with model quality and with the guidance of
// golden examples; resampling with a new salt redraws everything.
func (m *Model) GenerateComplement(prompt string, golden []Example, salt string) string {
	analysis := facet.AnalyzePrompt(prompt)
	guidance := 0.0
	if len(golden) > 0 {
		guidance = 0.5
		if len(golden) >= 4 {
			guidance = 1.0 // the paper uses 4-5 examples per category
		}
	}
	fidelity := 0.35 + 0.45*m.profile.Quality + 0.20*guidance
	if fidelity > 1 {
		fidelity = 1
	}

	// Defect draws. Each class has a base rate damped by fidelity.
	if m.draw(prompt, "leak/"+salt, salt) < 0.16*(1.6-fidelity) {
		return facet.RenderAnswerLeak(prompt + salt)
	}
	if analysis.Constraints.Len() > 0 && m.draw(prompt, "conflict/"+salt, salt) < 0.30*(1.6-fidelity) {
		constrained := analysis.Constraints.Facets()[0]
		return facet.RenderConflicting(constrained, prompt+salt)
	}
	if analysis.Complexity < 1 && m.draw(prompt, "overreach/"+salt, salt) < 0.22*(1.6-fidelity) {
		return facet.RenderDirectives([]facet.Facet{
			facet.Completeness, facet.Examples, facet.Context, facet.Safety, facet.Planning,
		}, prompt+salt)
	}

	// Healthy generation: demand the prompt's top needs, skipping facets
	// that conflict with its constraints.
	want := pickFacets(analysis, m, prompt, salt, fidelity)
	return facet.RenderDirectives(want, prompt+salt)
}

// pickFacets selects 2-3 facets to demand, favouring the prompt's top
// needs; low fidelity substitutes off-target facets.
func pickFacets(analysis facet.Analysis, m *Model, prompt, salt string, fidelity float64) []facet.Facet {
	top := analysis.Needs.Top(4)
	n := 2
	if m.draw(prompt, "facetcount/"+salt, salt) < 0.5 {
		n = 3
	}
	var out []facet.Facet
	for _, f := range top {
		if len(out) == n {
			break
		}
		if conflictsConstraint(analysis, f) {
			continue
		}
		out = append(out, f)
	}
	// Trap prompts always get the vigilance directive from a competent
	// generator — the paper's case study 1 behaviour.
	if analysis.Trapped && !contains(out, facet.TrapAware) {
		out = append([]facet.Facet{facet.TrapAware}, out...)
		if len(out) > n+1 {
			out = out[:n+1]
		}
	}
	// Off-target substitution at low fidelity.
	if len(out) > 0 && m.draw(prompt, "offtarget/"+salt, salt) < 0.35*(1.3-fidelity) {
		sub := facet.Facet(int(m.draw(prompt, "offpick/"+salt, salt) * float64(facet.Count)))
		if sub.Valid() && !conflictsConstraint(analysis, sub) {
			out[len(out)-1] = sub
		}
	}
	if len(out) == 0 {
		out = []facet.Facet{facet.Specificity}
	}
	return out
}

func conflictsConstraint(analysis facet.Analysis, f facet.Facet) bool {
	for _, g := range analysis.Constraints.Facets() {
		if f != g && facet.ConflictsWith(f, g) {
			return true
		}
	}
	return false
}

func contains(fs []facet.Facet, f facet.Facet) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

// Verdict is the critic's judgement of one (prompt, complement) pair,
// the output of the Figure 5 prompt.
type Verdict struct {
	// Correct reports whether the pair passed the critic.
	Correct bool
	// Reason names the defect class found, or "ok".
	Reason string
}

// CritiquePair plays the Figure 5 call: diagnose whether a complementary
// prompt is a valid supplement to the user prompt. Ground-truth defects
// are recovered from the texts; the critic's accuracy is imperfect and
// grows with model quality, so a weak critic lets some bad pairs through
// and discards some good ones.
func (m *Model) CritiquePair(prompt, complement string) Verdict {
	analysis := facet.AnalyzePrompt(prompt)
	dirs := facet.DetectDirectives(complement)

	defect := ""
	switch {
	case facet.DetectAnswerLeak(complement):
		defect = "answers-instead-of-supplementing"
	case len(facet.ConflictingDirectives(analysis, dirs)) > 0:
		defect = "conflicts-with-constraints"
	case dirs.Len() >= 4 && analysis.Complexity < 1:
		defect = "excessive-additions"
	case dirs.Len() == 0:
		defect = "no-usable-directive"
	case offTargetScore(analysis, dirs) < 0.15:
		defect = "deviates-from-intent"
	}

	accuracy := 0.80 + 0.18*m.profile.Quality
	flip := m.draw(prompt+"\x00"+complement, "critique", "") > accuracy
	correct := defect == ""
	if flip {
		correct = !correct
		if defect == "" {
			defect = "false-rejection"
		} else {
			defect = ""
		}
	}
	if correct {
		return Verdict{Correct: true, Reason: "ok"}
	}
	return Verdict{Correct: false, Reason: defect}
}

// offTargetScore measures how much the demanded facets overlap the
// prompt's needs: mean need weight of the demanded facets, normalised by
// the prompt's own top need.
func offTargetScore(analysis facet.Analysis, dirs facet.Set) float64 {
	fs := dirs.Facets()
	if len(fs) == 0 {
		return 0
	}
	var top float64
	for _, w := range analysis.Needs {
		if w > top {
			top = w
		}
	}
	if top == 0 {
		return 1
	}
	var sum float64
	for _, f := range fs {
		sum += analysis.Needs[f]
	}
	return sum / (float64(len(fs)) * top)
}

// DescribeVerdict renders a verdict as the JSON-ish line the Figure 5
// prompt requests, for logging and the examples.
func DescribeVerdict(v Verdict) string {
	yn := "No"
	if v.Correct {
		yn = "Yes"
	}
	return fmt.Sprintf(`{"Reason": %q, "Is_correct": %q}`, v.Reason, yn)
}
