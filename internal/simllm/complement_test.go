package simllm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/facet"
)

var testGolden = []Example{
	{Prompt: "Explain how tides form", Complement: "Please provide background; cover all aspects."},
	{Prompt: "Write a poem about rain", Complement: "Please match the tone; keep the voice."},
	{Prompt: "Fix my python bug", Complement: "Please be specific; include examples."},
	{Prompt: "Solve this equation", Complement: "Please step by step; be accurate."},
}

func TestGenerateComplementDeterministic(t *testing.T) {
	m := MustModel(Qwen27B)
	p := "Explain the science of fermentation."
	if m.GenerateComplement(p, testGolden, "s1") != m.GenerateComplement(p, testGolden, "s1") {
		t.Fatal("not deterministic for fixed salt")
	}
}

func TestGenerateComplementUsuallyOnTarget(t *testing.T) {
	m := MustModel(GPT4Turbo)
	prompts := []string{
		"Write a python function that implements an LRU cache.",
		"Explain the history of the silk road.",
		"Give me advice on negotiating a salary offer.",
		"Analyze the trade offs of monolith versus microservices.",
	}
	good := 0
	total := 0
	for _, p := range prompts {
		needs := facet.AnalyzePrompt(p).Needs
		for i := 0; i < 25; i++ {
			aug := m.GenerateComplement(p, testGolden, fmt.Sprintf("g%d", i))
			total++
			dirs := facet.DetectDirectives(aug)
			if facet.DetectAnswerLeak(aug) || dirs.Len() == 0 {
				continue
			}
			onTarget := false
			for _, f := range dirs.Facets() {
				if needs[f] > 0.4 {
					onTarget = true
				}
			}
			if onTarget {
				good++
			}
		}
	}
	rate := float64(good) / float64(total)
	if rate < 0.7 {
		t.Fatalf("on-target rate = %.2f, want >= 0.7", rate)
	}
}

func TestGenerateComplementHasDefectsWithoutGolden(t *testing.T) {
	m := MustModel(Qwen27B)
	defectsWith, defectsWithout := 0, 0
	prompts := []string{
		"Briefly summarize this long article about coral reefs.",
		"Briefly, what is the capital of australia?",
		"Briefly explain how vaccines work.",
		"Hello! How is your morning going?",
	}
	for _, p := range prompts {
		for i := 0; i < 50; i++ {
			salt := fmt.Sprintf("d%d", i)
			if isDefective(p, m.GenerateComplement(p, testGolden, salt)) {
				defectsWith++
			}
			if isDefective(p, m.GenerateComplement(p, nil, salt)) {
				defectsWithout++
			}
		}
	}
	if defectsWithout <= defectsWith {
		t.Fatalf("golden guidance should reduce defects: with=%d without=%d", defectsWith, defectsWithout)
	}
	if defectsWith == 0 {
		t.Fatal("raw generation should still produce some defects (the critic needs work to do)")
	}
}

func isDefective(prompt, aug string) bool {
	a := facet.AnalyzePrompt(prompt)
	dirs := facet.DetectDirectives(aug)
	return facet.DetectAnswerLeak(aug) ||
		len(facet.ConflictingDirectives(a, dirs)) > 0 ||
		(dirs.Len() >= 4 && a.Complexity < 1)
}

func TestGenerateComplementAddsTrapWarning(t *testing.T) {
	m := MustModel(GPT4Turbo)
	p := "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"
	warned := 0
	for i := 0; i < 30; i++ {
		aug := m.GenerateComplement(p, testGolden, fmt.Sprintf("w%d", i))
		if facet.DetectDirectives(aug).Has(facet.TrapAware) {
			warned++
		}
	}
	if warned < 24 {
		t.Fatalf("trap prompts should almost always get the vigilance directive: %d/30", warned)
	}
}

func TestCritiqueCatchesRenderedDefects(t *testing.T) {
	m := MustModel(GPT4Turbo)
	prompt := "Briefly summarize this long article about coral reefs."
	cases := map[string]string{
		"leak":     facet.RenderAnswerLeak("v1"),
		"conflict": facet.RenderConflicting(facet.Conciseness, "v2"),
		"empty":    "hmm interesting question",
	}
	for name, bad := range cases {
		caught := 0
		for i := 0; i < 30; i++ {
			// vary prompt suffix to vary the accuracy draw
			v := m.CritiquePair(prompt+strings.Repeat(" ", i%5), bad)
			if !v.Correct {
				caught++
			}
		}
		if caught < 22 {
			t.Errorf("defect %q caught only %d/30 times", name, caught)
		}
	}
}

func TestCritiquePassesCleanPairs(t *testing.T) {
	m := MustModel(GPT4Turbo)
	prompt := "Explain the history of the silk road."
	aug := facet.RenderDirectives([]facet.Facet{facet.Context, facet.Completeness}, "clean")
	passed := 0
	for i := 0; i < 30; i++ {
		if m.CritiquePair(prompt+strings.Repeat(" ", i%7), aug).Correct {
			passed++
		}
	}
	if passed < 24 {
		t.Fatalf("clean pair rejected too often: passed %d/30", passed)
	}
}

func TestCritiqueRejectsOffTarget(t *testing.T) {
	m := MustModel(GPT4Turbo)
	// A chitchat greeting does not need safety caveats and planning.
	prompt := "Hello! How is your morning going?"
	offTarget := facet.RenderDirectives([]facet.Facet{facet.Safety, facet.Planning}, "off")
	rejected := 0
	for i := 0; i < 30; i++ {
		if !m.CritiquePair(prompt+strings.Repeat(" ", i%7), offTarget).Correct {
			rejected++
		}
	}
	if rejected < 20 {
		t.Fatalf("off-target aug rejected only %d/30 times", rejected)
	}
}

func TestDescribeVerdict(t *testing.T) {
	got := DescribeVerdict(Verdict{Correct: true, Reason: "ok"})
	if !strings.Contains(got, `"Is_correct": "Yes"`) {
		t.Fatalf("verdict json = %s", got)
	}
	got = DescribeVerdict(Verdict{Correct: false, Reason: "conflicts-with-constraints"})
	if !strings.Contains(got, `"Is_correct": "No"`) || !strings.Contains(got, "conflicts") {
		t.Fatalf("verdict json = %s", got)
	}
}

func BenchmarkRespond(b *testing.B) {
	m := MustModel(GPT4Turbo)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Respond(prompt, Options{Salt: "bench"})
	}
}

func BenchmarkGenerateComplement(b *testing.B) {
	m := MustModel(Qwen27B)
	prompt := "Write a python function that implements a rate limiter."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.GenerateComplement(prompt, testGolden, "bench")
	}
}
