package simllm

import (
	"repro/internal/facet"
	"repro/internal/textkit"
)

// ScorePromptQuality rates a user prompt's usefulness as training-data
// source material on a 0-10 scale, playing the role of the BaiChuan-13B
// quality scorer in §3.1. The score reflects what an LLM scorer actually
// keys on — enough words to carry intent, a recognisable task, low
// repetition — plus capability-dependent noise: weaker scorer models make
// noisier judgements.
func (m *Model) ScorePromptQuality(prompt string) float64 {
	words := textkit.Words(prompt)
	score := 5.0

	// Length: too short carries no intent; absurd length is suspect.
	switch {
	case len(words) < 3:
		score -= 4
	case len(words) < 6:
		score -= 1.5
	case len(words) > 120:
		score -= 1
	default:
		score += 1
	}

	// Repetition: junk like "asdf asdf asdf" repeats tokens.
	if len(words) > 0 {
		uniq := make(map[string]bool, len(words))
		for _, w := range words {
			uniq[w] = true
		}
		ratio := float64(len(uniq)) / float64(len(words))
		if ratio < 0.6 {
			score -= 3
		} else {
			score += ratio
		}
	}

	// Recognisable intent: prompts whose words hit a category cue lexicon
	// read as real tasks.
	a := facet.AnalyzePrompt(prompt)
	if a.CategoryScore > 0 {
		score += 1.5
	} else {
		score -= 2
	}

	// Scorer noise shrinks with model quality.
	noise := (m.draw(prompt, "score", "") - 0.5) * 2 * (1.2 - m.profile.Quality)
	score += noise

	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	return score
}
