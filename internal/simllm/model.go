package simllm

import (
	"fmt"
	"strings"

	"repro/internal/facet"
	"repro/internal/textkit"
)

// Message is one turn of a chat conversation.
type Message struct {
	// Role is "system", "user", or "assistant".
	Role string
	// Content is the turn's text.
	Content string
}

// Options control one generation call.
type Options struct {
	// Temperature scales decision noise; 0 is near-deterministic choice,
	// 1 is the default sampling regime.
	Temperature float64
	// Salt decorrelates repeated calls on the same input (a stand-in for
	// resampling). Same salt, same output.
	Salt string
	// MaxSections caps the number of facet sections rendered; 0 means
	// the model's natural length.
	MaxSections int
}

// Model is one simulated chat LLM.
type Model struct {
	profile Profile
	seed    uint64
}

// New creates a model from a profile.
func New(p Profile) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{profile: p, seed: textkit.Hash64(p.Name)}, nil
}

// MustModel returns the built-in model with the given name, panicking on
// unknown names; use for the fixed rosters in experiments and examples.
func MustModel(name string) *Model {
	p, err := LookupProfile(name)
	if err != nil {
		panic(err)
	}
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the model's public identifier.
func (m *Model) Name() string { return m.profile.Name }

// Profile returns a copy of the model's capability profile.
func (m *Model) Profile() Profile { return m.profile }

// Chat runs a chat completion over the messages and returns the
// assistant's reply. Only user and system content conditions the reply;
// the last user message is treated as the prompt and earlier user/system
// turns as context, matching how the plug-and-play system concatenates
// prompt and complementary prompt into one user turn.
func (m *Model) Chat(messages []Message, opt Options) (string, error) {
	if len(messages) == 0 {
		return "", fmt.Errorf("simllm: %s: empty message list", m.profile.Name)
	}
	var input strings.Builder
	for _, msg := range messages {
		switch msg.Role {
		case "user", "system":
			if input.Len() > 0 {
				input.WriteString("\n")
			}
			input.WriteString(msg.Content)
		case "assistant":
			// prior assistant turns are context we do not re-answer
		default:
			return "", fmt.Errorf("simllm: %s: unknown role %q", m.profile.Name, msg.Role)
		}
	}
	return m.Respond(input.String(), opt), nil
}

// Respond generates a reply to the input text, which may be a bare user
// prompt or a prompt with a complementary prompt appended.
func (m *Model) Respond(input string, opt Options) string {
	// The model answers the *final* question: with few-shot
	// demonstrations prepended, analysing the whole input would let a
	// demo's trap cue or constraint hijack the response. Directives are
	// still read from the full input — instructions anywhere steer.
	analysis := facet.AnalyzePrompt(focusTail(input, 80))
	directives := facet.DetectDirectives(input)
	// An augmentation that leaks an "answer" derails generation: the
	// model latches onto the supplied answer and parrots it instead of
	// doing its own work — the reason the Figure 5 critic treats direct
	// answers as a hard defect.
	if facet.DetectAnswerLeak(input) &&
		m.draw(input, "parrot", opt.Salt) < 0.5+0.3*(1-m.profile.Quality) {
		return "As already stated, the answer is as given above; nothing further to add."
	}
	plan := m.plan(input, analysis, directives, opt)
	return m.render(input, analysis, plan, opt)
}

// responsePlan is the internal decision of what the response will deliver.
type responsePlan struct {
	covered      []facet.Facet
	emphasized   facet.Set // directive-driven facets, delivered with extra weight
	trapHandled  bool
	conciseObeys bool // whether an active conciseness constraint is obeyed
	confused     bool // conflicting directives degraded the response
}

func (m *Model) plan(input string, analysis facet.Analysis, directives facet.Set, opt Options) responsePlan {
	var plan responsePlan
	noise := opt.Temperature
	if noise <= 0 {
		noise = 0.15
	}
	conflicts := facet.ConflictingDirectives(analysis, directives)
	plan.confused = len(conflicts) > 0 &&
		m.draw(input, "confusion", opt.Salt) < 0.4+0.4*(1-m.profile.Obedience)
	// Attention dilution: a battery of four or more directives on a
	// simple prompt scatters the model (the critic's "excessive
	// additions" defect is a real failure mode, not a style nit).
	if directives.Len() >= 4 && analysis.Complexity < 1.2 &&
		m.draw(input, "dilution", opt.Salt) < 0.5+0.3*(1-m.profile.Quality) {
		plan.confused = true
	}

	// Facet coverage: intrinsic attention from need x quality, plus the
	// obedience boost for explicitly demanded facets.
	type scored struct {
		f facet.Facet
		s float64
	}
	var candidates []scored
	for _, f := range facet.All() {
		need := analysis.Needs[f]
		drive := need * m.profile.Quality
		if directives.Has(f) {
			drive += 0.6 * m.profile.Obedience
		}
		drive += (m.draw(input, "facet/"+f.String(), opt.Salt) - 0.5) * noise
		if plan.confused {
			drive -= 0.25
		}
		if drive > 0.45 {
			candidates = append(candidates, scored{f, drive})
		}
	}
	// Strongest facets first; weak models attend to fewer facets.
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0 && candidates[j].s > candidates[j-1].s; j-- {
			candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
		}
	}
	budget := 2 + int(m.profile.Quality*4)
	if opt.MaxSections > 0 && opt.MaxSections < budget {
		budget = opt.MaxSections
	}

	// An obeyed conciseness constraint caps the response at two sections;
	// a model confused by conflicting directives blows through it.
	concise := analysis.Constraints.Has(facet.Conciseness)
	plan.conciseObeys = concise && !plan.confused
	if plan.conciseObeys && budget > 2 {
		budget = 2
	}
	if len(candidates) > budget {
		candidates = candidates[:budget]
	}
	for _, c := range candidates {
		plan.covered = append(plan.covered, c.f)
		// A facet the input explicitly demanded gets emphatic treatment:
		// instructed models dwell on what they were told to dwell on.
		if directives.Has(c.f) && m.draw(input, "emph/"+c.f.String(), opt.Salt) < 0.55*m.profile.Obedience {
			plan.emphasized = plan.emphasized.With(c.f)
		}
	}

	if analysis.Trapped {
		if directives.Has(facet.TrapAware) {
			plan.trapHandled = m.draw(input, "trap-warned", opt.Salt) < 0.55+0.45*m.profile.Obedience
		} else {
			plan.trapHandled = m.draw(input, "trap", opt.Salt) < m.profile.TrapResistance
		}
	}
	return plan
}

// draw returns a deterministic pseudo-uniform value for this model,
// input, purpose and salt.
func (m *Model) draw(input, purpose, salt string) float64 {
	return textkit.Unit(purpose+"\x00"+salt+"\x00"+input, m.seed)
}

// render turns a plan into response text. Every delivered facet is
// expressed through its delivery lexicon so the judge can see it, and
// content words from the prompt are echoed so relevance is measurable.
func (m *Model) render(input string, analysis facet.Analysis, plan responsePlan, opt Options) string {
	topic := topicWords(input, 6)
	var b strings.Builder

	if plan.conciseObeys {
		b.WriteString("In short: ")
	} else {
		fmt.Fprintf(&b, "Here is a response regarding %s.\n", strings.Join(topic, " "))
	}

	if analysis.Trapped {
		if plan.trapHandled {
			lex := facet.DeliveryLexicon(facet.TrapAware)
			phrase := lex[textkit.Bucket(input+opt.Salt, m.seed, len(lex))]
			fmt.Fprintf(&b, "%s: %s. ", capitalize(phrase), analysis.Trap.RightClaim)
		} else {
			fmt.Fprintf(&b, "The answer: %s. ", analysis.Trap.WrongClaim)
		}
	}

	for i, f := range plan.covered {
		lex := facet.DeliveryLexicon(f)
		phrase := lex[textkit.Bucket(input+opt.Salt+f.String(), m.seed, len(lex))]
		echo := ""
		if len(topic) > 0 {
			echo = topic[i%len(topic)]
		}
		fmt.Fprintf(&b, "%s %s", capitalize(phrase), sectionBody(f, echo))
		if plan.emphasized.Has(f) && len(lex) > 1 {
			second := lex[(textkit.Bucket(input+opt.Salt+f.String(), m.seed, len(lex))+1)%len(lex)]
			fmt.Fprintf(&b, " %s, as requested, this is treated in depth.", capitalize(second))
		}
		if !plan.conciseObeys {
			// Verbosity padding scales with the profile, giving the
			// judge's length bias something real to be biased about.
			pad := int(m.profile.Verbosity * 2)
			for p := 0; p < pad; p++ {
				fmt.Fprintf(&b, " This consideration of %s merits attention.", echo)
			}
		}
		b.WriteString("\n")
	}

	if len(plan.covered) == 0 {
		fmt.Fprintf(&b, "Regarding %s, a brief take: it depends on the details.", strings.Join(topic, " "))
	}
	return strings.TrimSpace(b.String())
}

// sectionBody writes a facet-appropriate sentence mentioning the echoed
// topic word.
func sectionBody(f facet.Facet, echo string) string {
	if echo == "" {
		echo = "the question"
	}
	switch f {
	case facet.Reasoning:
		return fmt.Sprintf("we examine %s, and each inference about %s is made explicit.", echo, echo)
	case facet.Specificity:
		return fmt.Sprintf("the details of %s are pinned down with exact parameters.", echo)
	case facet.Structure:
		return fmt.Sprintf("the treatment of %s is organised into clear parts.", echo)
	case facet.Style:
		return fmt.Sprintf("the register suits %s throughout.", echo)
	case facet.Context:
		return fmt.Sprintf("the background of %s frames the answer.", echo)
	case facet.Completeness:
		return fmt.Sprintf("every relevant aspect of %s is covered, including edge conditions.", echo)
	case facet.Accuracy:
		return fmt.Sprintf("claims about %s are checked before being stated.", echo)
	case facet.Conciseness:
		return fmt.Sprintf("%s, distilled.", echo)
	case facet.Examples:
		return fmt.Sprintf("a concrete case involving %s makes this tangible.", echo)
	case facet.Safety:
		return fmt.Sprintf("limits around %s are flagged where they matter.", echo)
	case facet.Planning:
		return fmt.Sprintf("the approach to %s is laid out before executing it.", echo)
	default:
		return fmt.Sprintf("the matter of %s receives due care.", echo)
	}
}

// focusTail returns the segment a chat model actually answers: the last
// blank-line-separated block (few-shot demonstrations are conventionally
// separated by blank lines), bounded to the last n words. Inputs without
// blocks and shorter than n words are returned unchanged (preserving
// punctuation for downstream matching).
func focusTail(input string, n int) string {
	if i := strings.LastIndex(input, "\n\n"); i >= 0 {
		input = input[i+2:]
	}
	words := textkit.Words(input)
	if len(words) <= n {
		return input
	}
	return strings.Join(words[len(words)-n:], " ")
}

// topicWords extracts up to n distinctive content words from the prompt,
// reading only its tail: with few-shot demonstrations prepended, the
// user's actual question is the final segment, and that is what a chat
// model's answer is about.
func topicWords(input string, n int) []string {
	words := textkit.Words(focusTail(input, 50))
	seen := make(map[string]bool)
	var out []string
	for _, w := range words {
		if len(w) < 5 || stopwords[w] || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
		if len(out) == n {
			break
		}
	}
	return out
}

var stopwords = map[string]bool{
	"about": true, "after": true, "again": true, "before": true, "being": true,
	"could": true, "every": true, "first": true, "other": true, "please": true,
	"should": true, "their": true, "there": true, "these": true, "thing": true,
	"think": true, "those": true, "which": true, "while": true, "would": true,
	"write": true, "explain": true, "describe": true,
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
