// Package simllm implements the simulated large language models that stand
// in for the GPT-4/GPT-3.5/Qwen2/LLaMA chat APIs of the paper's
// experiments (see DESIGN.md §2 for the substitution argument).
//
// A simulated model is text-in/text-out. It "understands" its input using
// the shared analyzers of internal/facet: it reads the needs out of the
// user prompt, reads directives out of any appended complementary prompt,
// and renders a response whose words actually deliver (or fail to deliver)
// those facets. Downstream, the LLM-as-judge recovers quality from the
// response words alone — so augmentation helps end-to-end for the same
// reason it does with real models: it redirects the responder's attention,
// which changes the text, which changes the judgement.
//
// All stochastic choices are deterministic functions of (input, model
// seed, salt), so experiments are exactly reproducible.
package simllm

import (
	"fmt"
	"sort"
)

// Profile describes a model's capabilities. Values are calibrated so that
// relative strengths mirror public leaderboard orderings of the paper's
// model roster; absolute values are arbitrary units.
type Profile struct {
	// Name is the public model identifier.
	Name string
	// Quality is overall generation strength in [0,1]: how reliably the
	// model covers a prompt's needs unaided.
	Quality float64
	// Obedience is instruction-following strength in [0,1]: how strongly
	// an explicit directive (from the user or from PAS) redirects
	// attention.
	Obedience float64
	// TrapResistance is the probability of spotting a logic trap with no
	// warning.
	TrapResistance float64
	// Verbosity scales response length (1 = neutral).
	Verbosity float64
}

// Validate reports whether the profile's parameters are in range.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("simllm: profile has empty name")
	}
	// Ordered, not a map: with several fields out of range the error
	// must name the same one every run.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Quality", p.Quality}, {"Obedience", p.Obedience}, {"TrapResistance", p.TrapResistance},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("simllm: profile %s: %s must be in [0,1], got %v", p.Name, f.name, f.v)
		}
	}
	if p.Verbosity <= 0 {
		return fmt.Errorf("simllm: profile %s: Verbosity must be positive, got %v", p.Name, p.Verbosity)
	}
	return nil
}

// The built-in roster. These are the models named in Tables 1, 2 and 5.
const (
	GPT4Turbo   = "gpt-4-turbo-2024-04-09"
	GPT41106    = "gpt-4-1106-preview"
	GPT40613    = "gpt-4-0613"
	GPT35Turbo  = "gpt-3.5-turbo-1106"
	Qwen272B    = "qwen2-72b-chat"
	LLaMA370B   = "llama-3-70b-instruct"
	Qwen27B     = "qwen2-7b-chat"
	LLaMA27B    = "llama-2-7b-instruct"
	Baichuan13B = "baichuan-13b"
)

var registry = map[string]Profile{
	GPT4Turbo:   {Name: GPT4Turbo, Quality: 0.90, Obedience: 0.92, TrapResistance: 0.55, Verbosity: 1.30},
	GPT41106:    {Name: GPT41106, Quality: 0.88, Obedience: 0.90, TrapResistance: 0.50, Verbosity: 1.25},
	GPT40613:    {Name: GPT40613, Quality: 0.70, Obedience: 0.80, TrapResistance: 0.30, Verbosity: 1.00},
	GPT35Turbo:  {Name: GPT35Turbo, Quality: 0.55, Obedience: 0.70, TrapResistance: 0.15, Verbosity: 0.90},
	Qwen272B:    {Name: Qwen272B, Quality: 0.78, Obedience: 0.82, TrapResistance: 0.35, Verbosity: 1.10},
	LLaMA370B:   {Name: LLaMA370B, Quality: 0.76, Obedience: 0.80, TrapResistance: 0.32, Verbosity: 1.05},
	Qwen27B:     {Name: Qwen27B, Quality: 0.60, Obedience: 0.75, TrapResistance: 0.20, Verbosity: 1.00},
	LLaMA27B:    {Name: LLaMA27B, Quality: 0.45, Obedience: 0.60, TrapResistance: 0.10, Verbosity: 0.95},
	Baichuan13B: {Name: Baichuan13B, Quality: 0.58, Obedience: 0.72, TrapResistance: 0.20, Verbosity: 1.00},
}

// LookupProfile returns the built-in profile for a model name.
func LookupProfile(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("simllm: unknown model %q", name)
	}
	return p, nil
}

// Roster returns the built-in model names, sorted.
func Roster() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MainModels returns the six downstream models of Table 1, in the paper's
// row order.
func MainModels() []string {
	return []string{GPT4Turbo, GPT41106, GPT40613, GPT35Turbo, Qwen272B, LLaMA370B}
}
