package simllm

import (
	"fmt"

	"repro/internal/facet"
)

// SelfConsistent samples k responses with independent salts and returns
// the one agreeing with the majority answer — the Self-Consistency
// decoding strategy of the paper's related work (§2.1). On trap prompts
// the "answer" is the stated claim; elsewhere the sample delivering the
// most prompt needs wins (there is no discrete answer to vote on, so the
// method degrades to best-of-k, as it does in practice on open-ended
// tasks).
//
// Self-Consistency multiplies inference cost by k; PAS adds one short
// complementary prompt. The ablation bench compares the two trade-offs.
func (m *Model) SelfConsistent(input string, k int, opt Options) (string, error) {
	if k < 1 {
		return "", fmt.Errorf("simllm: %s: k must be >= 1, got %d", m.profile.Name, k)
	}
	samples := make([]string, k)
	for i := range samples {
		o := opt
		o.Salt = fmt.Sprintf("%s/sc%d", opt.Salt, i)
		samples[i] = m.Respond(input, o)
	}
	if k == 1 {
		return samples[0], nil
	}

	analysis := facet.AnalyzePrompt(input)
	if analysis.Trapped {
		// Vote on the discrete claim.
		var right, wrong []string
		for _, s := range samples {
			switch {
			case analysis.Trap.ClaimsRight(s):
				right = append(right, s)
			case analysis.Trap.ClaimsWrong(s):
				wrong = append(wrong, s)
			}
		}
		if len(right) >= len(wrong) && len(right) > 0 {
			return right[0], nil
		}
		if len(wrong) > 0 {
			return wrong[0], nil
		}
		return samples[0], nil
	}

	// Open-ended: keep the sample covering the most needed facets.
	best, bestScore := samples[0], -1.0
	for _, s := range samples {
		delivered := facet.DetectDelivered(s)
		var score float64
		for f := 0; f < facet.Count; f++ {
			if analysis.Needs[f] > 0 && delivered[f] > 0 {
				score += analysis.Needs[f]
			}
		}
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best, nil
}
