package curation

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/corpus"
)

func testClassifier(t testing.TB) *classify.Classifier {
	t.Helper()
	ex, err := classify.TrainingSet(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := classify.Train(ex, classify.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testPool(t testing.TB, size int) []corpus.Prompt {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = size
	cfg.Seed = 21
	pool, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestRunValidation(t *testing.T) {
	clf := testClassifier(t)
	if _, err := Run(nil, clf, DefaultConfig()); err == nil {
		t.Error("empty pool should fail")
	}
	if _, err := Run(testPool(t, 10), nil, DefaultConfig()); err == nil {
		t.Error("nil classifier should fail")
	}
	bad := DefaultConfig()
	bad.QualityThreshold = 42
	if _, err := Run(testPool(t, 10), clf, bad); err == nil {
		t.Error("threshold out of range should fail")
	}
	bad = DefaultConfig()
	bad.ScorerModel = "unknown-model"
	if _, err := Run(testPool(t, 10), clf, bad); err == nil {
		t.Error("unknown scorer should fail")
	}
}

func TestPipelineStagesDoTheirJobs(t *testing.T) {
	pool := testPool(t, 1500)
	res, err := Run(pool, testClassifier(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats

	if st.Input != 1500 {
		t.Fatalf("input = %d", st.Input)
	}
	// Dedup must collapse a meaningful share (dup rate is 25%).
	if st.DupCollapsed < 100 {
		t.Errorf("dedup collapsed only %d entries", st.DupCollapsed)
	}
	if st.AfterDedup+st.DupCollapsed != st.Input {
		t.Errorf("dedup accounting broken: %d + %d != %d", st.AfterDedup, st.DupCollapsed, st.Input)
	}
	// Quality filter must drop most junk.
	if st.DroppedJunk == 0 {
		t.Error("filter dropped no junk")
	}
	junkRecall := float64(st.DroppedJunk) / float64(st.DroppedJunk+st.LeakedJunk)
	if junkRecall < 0.8 {
		t.Errorf("junk recall = %.2f, want >= 0.8", junkRecall)
	}
	if st.AfterFilter == 0 || st.AfterFilter > st.AfterDedup {
		t.Errorf("filter stage count wrong: %d of %d", st.AfterFilter, st.AfterDedup)
	}
	if st.MeanScore < 5 {
		t.Errorf("mean kept score %.2f below threshold", st.MeanScore)
	}
	if len(res.Selected) != st.AfterFilter {
		t.Errorf("selected %d != after-filter %d", len(res.Selected), st.AfterFilter)
	}
}

func TestClassificationMostlyCorrect(t *testing.T) {
	pool := testPool(t, 1500)
	res, err := Run(pool, testClassifier(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hit, total int
	for _, c := range res.Selected {
		if c.Prompt.Truth.Junk {
			continue
		}
		total++
		if c.Category == c.Prompt.Truth.Category {
			hit++
		}
	}
	if total == 0 {
		t.Fatal("no survivors to check")
	}
	acc := float64(hit) / float64(total)
	if acc < 0.8 {
		t.Fatalf("curated classification accuracy = %.3f", acc)
	}
}

func TestDedupKeepsOnePerFamily(t *testing.T) {
	pool := testPool(t, 1200)
	res, err := Run(pool, testClassifier(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No two survivors should be generator-level duplicates of each other.
	family := func(p corpus.Prompt) int {
		if p.Truth.DupOf >= 0 {
			return p.Truth.DupOf
		}
		return p.ID
	}
	seen := map[int]int{}
	dups := 0
	for _, c := range res.Selected {
		f := family(c.Prompt)
		if _, ok := seen[f]; ok {
			dups++
		}
		seen[f]++
	}
	// Allow a small leak rate: embeddings are approximate.
	if frac := float64(dups) / float64(len(res.Selected)); frac > 0.05 {
		t.Fatalf("duplicate families leaked: %.3f of survivors", frac)
	}
}

func TestCategoryCountsSumToSelected(t *testing.T) {
	pool := testPool(t, 800)
	res, err := Run(pool, testClassifier(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range res.CategoryCounts() {
		sum += n
	}
	if sum != len(res.Selected) {
		t.Fatalf("category counts sum %d != %d", sum, len(res.Selected))
	}
}

func TestDeterministic(t *testing.T) {
	pool := testPool(t, 600)
	clf := testClassifier(t)
	a, err := Run(pool, clf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pool, clf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range a.Selected {
		if a.Selected[i].Prompt.ID != b.Selected[i].Prompt.ID {
			t.Fatal("non-deterministic selection order")
		}
	}
}

func BenchmarkCuration1k(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.Size = 1000
	pool, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	clf := testClassifier(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pool, clf, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
