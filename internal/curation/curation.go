// Package curation implements the §3.1 prompt-selection pipeline: embed
// the raw pool, group near-duplicates with HNSW and keep one
// representative per group, score quality with an LLM and drop low-quality
// entries, and classify the survivors into the 14 categories.
package curation

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// Curated is one prompt that survived selection.
type Curated struct {
	// Prompt is the original pool entry.
	Prompt corpus.Prompt
	// Category is the classifier's label.
	Category facet.Category
	// Score is the quality scorer's 0-10 rating.
	Score float64
}

// Stats summarises what each stage did.
type Stats struct {
	Input        int // raw pool size
	Groups       int // dedup groups found
	AfterDedup   int // representatives kept
	AfterFilter  int // survivors of the quality filter
	MeanScore    float64
	DroppedJunk  int // known-junk prompts removed by the filter
	LeakedJunk   int // known-junk prompts that survived (filter noise)
	DupCollapsed int // duplicate entries removed by dedup
}

// Config controls the pipeline.
type Config struct {
	// Embed configures the sentence encoder.
	Embed embed.Config
	// Dedup configures near-duplicate grouping.
	Dedup cluster.DedupConfig
	// QualityThreshold is the minimum scorer rating to keep. The paper
	// filters "low-quality entries"; 5.0 keeps most real prompts and
	// drops junk.
	QualityThreshold float64
	// ScorerModel names the quality-scoring LLM (§3.1 uses BaiChuan 13B).
	ScorerModel string
	// OnProgress, when set, is called after each quality-scoring call
	// with the number of representatives scored so far and the total —
	// the scoring loop dominates curation wall-clock, and long builds
	// surface it on /metricsz. Excluded from checkpoint fingerprints.
	OnProgress func(done, total int) `json:"-"`
}

// DefaultConfig returns the pipeline settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Embed:            embed.DefaultConfig(),
		Dedup:            cluster.DefaultDedupConfig(),
		QualityThreshold: 5.0,
		ScorerModel:      simllm.Baichuan13B,
	}
}

// Result is the pipeline output.
type Result struct {
	Selected []Curated
	Stats    Stats
}

// Run executes the three-stage pipeline over the pool.
func Run(pool []corpus.Prompt, clf *classify.Classifier, cfg Config) (*Result, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("curation: empty pool")
	}
	if clf == nil {
		return nil, fmt.Errorf("curation: nil classifier")
	}
	if cfg.QualityThreshold < 0 || cfg.QualityThreshold > 10 {
		return nil, fmt.Errorf("curation: quality threshold must be in [0,10], got %v", cfg.QualityThreshold)
	}
	scorer, err := simllm.LookupProfile(cfg.ScorerModel)
	if err != nil {
		return nil, fmt.Errorf("curation: scorer: %w", err)
	}
	scorerModel, err := simllm.New(scorer)
	if err != nil {
		return nil, err
	}

	// Stage 1: embed and deduplicate.
	enc, err := embed.New(cfg.Embed)
	if err != nil {
		return nil, err
	}
	texts := make([]string, len(pool))
	for i, p := range pool {
		texts[i] = p.Text
	}
	if err := enc.Fit(texts); err != nil {
		return nil, err
	}
	vecs := enc.EncodeBatch(texts)
	groups, err := cluster.NearDuplicates(vecs, cfg.Dedup)
	if err != nil {
		return nil, fmt.Errorf("curation: dedup: %w", err)
	}

	var st Stats
	st.Input = len(pool)
	st.Groups = len(groups)
	reps := make([]corpus.Prompt, 0, len(groups))
	for _, g := range groups {
		reps = append(reps, pool[g.Representative])
		st.DupCollapsed += len(g.Members) - 1
	}
	st.AfterDedup = len(reps)

	// Stage 2: quality filter.
	var kept []corpus.Prompt
	var scores []float64
	var scoreSum float64
	for i, p := range reps {
		s := scorerModel.ScorePromptQuality(p.Text)
		if cfg.OnProgress != nil {
			cfg.OnProgress(i+1, len(reps))
		}
		if s >= cfg.QualityThreshold {
			kept = append(kept, p)
			scores = append(scores, s)
			scoreSum += s
			if p.Truth.Junk {
				st.LeakedJunk++
			}
		} else if p.Truth.Junk {
			st.DroppedJunk++
		}
	}
	st.AfterFilter = len(kept)
	if len(kept) > 0 {
		st.MeanScore = scoreSum / float64(len(kept))
	}

	// Stage 3: classification.
	out := make([]Curated, 0, len(kept))
	for i, p := range kept {
		cat, _ := clf.Predict(p.Text)
		out = append(out, Curated{Prompt: p, Category: cat, Score: scores[i]})
	}
	return &Result{Selected: out, Stats: st}, nil
}

// CategoryCounts tallies the curated prompts per category.
func (r *Result) CategoryCounts() map[facet.Category]int {
	out := make(map[facet.Category]int)
	for _, c := range r.Selected {
		out[c.Category]++
	}
	return out
}
