package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open (or
// half-open with its probe quota in flight). Classify treats it as
// overload, so retry schedules back off rather than hammering.
var ErrOpen = errors.New("resilience: circuit open")

// State is a breaker position.
type State int

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed State = iota
	// Open: traffic is rejected outright until the cooldown elapses.
	Open
	// HalfOpen: up to HalfOpenProbes requests are admitted to test the
	// backend; everyone else is still rejected.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a circuit breaker. Zero values select defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit. Default 5.
	Threshold int
	// Cooldown is how long the circuit stays open before admitting
	// half-open probes. Default 5s.
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrently in-flight probes while
	// half-open. Default 1 — at most one request per cooldown window
	// reaches a dead backend.
	HalfOpenProbes int
	// Now injects the clock; tests pin it. Default time.Now.
	Now func() time.Time
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Breaker is a three-state circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecutive int       // failures since the last success (closed state)
	openedAt    time.Time // when the circuit last opened
	probes      int       // in-flight half-open probes

	// lifetime counters, for Stats
	successes  int64
	failures   int64
	rejections int64
	opens      int64
	probeCount int64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow asks to pass one request through the breaker. On admission it
// returns a done callback the caller MUST invoke exactly once with the
// outcome; on rejection it returns ErrOpen. Outcomes: done(true) counts
// a success (closing a half-open circuit, resetting the failure streak),
// done(false) counts a failure (reopening a half-open circuit,
// lengthening the streak). Callers pass true for outcomes that say
// nothing about backend health (e.g. the client cancelled).
func (b *Breaker) Allow() (done func(success bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejections++
			return nil, ErrOpen
		}
		b.state = HalfOpen
		b.probes = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejections++
			return nil, ErrOpen
		}
		b.probes++
		b.probeCount++
	}
	return b.once(), nil
}

// once wraps the outcome recording so a double done() cannot corrupt
// the probe accounting.
func (b *Breaker) once() func(success bool) {
	var used sync.Once
	return func(success bool) {
		used.Do(func() { b.record(success) })
	}
}

func (b *Breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.successes++
	} else {
		b.failures++
	}
	switch b.state {
	case Closed:
		if success {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.probes--
		if success {
			b.state = Closed
			b.consecutive = 0
			return
		}
		b.trip()
	case Open:
		// A straggler from before the trip; the streak already counted.
	}
}

// trip opens the circuit. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.opens++
	b.probes = 0
}

// Do runs fn through the breaker, recording its outcome. Terminal
// errors (the caller's fault, not the backend's — 4xx, cancelled
// contexts) count as successes for health purposes.
func (b *Breaker) Do(fn func() error) error {
	done, err := b.Allow()
	if err != nil {
		return err
	}
	ferr := fn()
	done(ferr == nil || Classify(ferr) == Terminal)
	return ferr
}

// State reports the current position, advancing open → half-open when
// the cooldown has elapsed so monitoring never shows a stale "open".
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// BreakerStats is a monitoring snapshot, shaped for JSON stats bodies.
type BreakerStats struct {
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// Successes and Failures are recorded outcomes over the breaker's
	// lifetime.
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`
	// Rejections counts requests refused with ErrOpen.
	Rejections int64 `json:"rejections"`
	// Opens counts closed/half-open → open transitions.
	Opens int64 `json:"opens"`
	// Probes counts half-open probe admissions.
	Probes int64 `json:"probes"`
}

// Stats returns a consistent snapshot.
func (b *Breaker) Stats() BreakerStats {
	state := b.State().String()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:      state,
		Successes:  b.successes,
		Failures:   b.failures,
		Rejections: b.rejections,
		Opens:      b.opens,
		Probes:     b.probeCount,
	}
}
