package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// testPolicy returns a policy whose sleeps are recorded instead of
// slept and whose jitter is pinned to 1.0, so the schedule is exact.
func testPolicy(attempts int, base time.Duration) (Policy, *[]time.Duration) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: attempts,
		BaseDelay:   base,
		Rand:        func() float64 { return 1.0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	}
	return p, &slept
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p, slept := testPolicy(5, 10*time.Millisecond)
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("want success, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Exponential envelope with jitter pinned to the top: base, 2·base.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", *slept, want)
	}
}

// TestSeedJitterMakesDefaultRandDeterministic: two identically-seeded
// runs of a Policy using the shared default jitter source must produce
// the same backoff schedule. This is the hook code paths that build
// Policies internally rely on for reproducible tests.
func TestSeedJitterMakesDefaultRandDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		var slept []time.Duration
		p := Policy{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			// Rand deliberately nil: exercise the shared jitterSrc.
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return ctx.Err()
			},
		}
		_ = p.Do(context.Background(), func(ctx context.Context) error {
			return errors.New("transient")
		})
		return slept
	}

	SeedJitter(42)
	first := schedule()
	SeedJitter(42)
	second := schedule()
	// Re-seed with a fresh source afterwards so this test does not leave
	// a predictable schedule behind for other packages in the process.
	defer SeedJitter(time.Now().UnixNano())

	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("schedules = %v / %v, want 3 sleeps each", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sleep %d differs: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestDoStopsOnTerminal(t *testing.T) {
	p, slept := testPolicy(5, time.Millisecond)
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return AsTerminal(errors.New("bad request"))
	})
	if err == nil || calls != 1 || len(*slept) != 0 {
		t.Fatalf("terminal error retried: calls=%d sleeps=%v err=%v", calls, *slept, err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p, _ := testPolicy(3, time.Millisecond)
	calls := 0
	boom := errors.New("boom")
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want last fn error, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	p, slept := testPolicy(3, time.Millisecond)
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls == 1 {
			return WithRetryAfter(AsOverload(errors.New("429")), 700*time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 700*time.Millisecond {
		t.Fatalf("sleeps = %v, want exactly the 700ms hint", *slept)
	}
}

func TestDoCapsBackoffAtMaxDelay(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Rand:        func() float64 { return 1.0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	boom := errors.New("x")
	_ = p.Do(context.Background(), func(ctx context.Context) error { return boom })
	for i, d := range slept {
		if d > 250*time.Millisecond {
			t.Fatalf("sleep %d = %v exceeds MaxDelay", i, d)
		}
	}
	if last := slept[len(slept)-1]; last != 250*time.Millisecond {
		t.Fatalf("last sleep = %v, want pinned at MaxDelay", last)
	}
}

func TestDoJitterStaysInEnvelope(t *testing.T) {
	// A real random source: every sleep must fall in [0, cap].
	p := Policy{MaxAttempts: 8, BaseDelay: 8 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	var slept []time.Duration
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	_ = p.Do(context.Background(), func(ctx context.Context) error { return errors.New("x") })
	for i, d := range slept {
		cap := 8 * time.Millisecond << uint(i)
		if cap > 40*time.Millisecond {
			cap = 40 * time.Millisecond
		}
		if d < 0 || d > cap {
			t.Fatalf("sleep %d = %v outside [0, %v]", i, d, cap)
		}
	}
}

func TestDoRespectsContextDeadline(t *testing.T) {
	// Deadline 50ms away; backoff wants 100ms sleeps — the loop must
	// stop after the first attempt instead of sleeping past the
	// deadline, and it must return the fn error, not DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p, slept := testPolicy(10, 100*time.Millisecond)
	calls := 0
	boom := errors.New("upstream down")
	err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want descriptive fn error, got %v", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("retried past the deadline: calls=%d sleeps=%v", calls, *slept)
	}
}

func TestDoRespectsBudget(t *testing.T) {
	now := time.Unix(0, 0)
	p := Policy{
		MaxAttempts: 10,
		BaseDelay:   300 * time.Millisecond,
		Budget:      time.Second,
		Rand:        func() float64 { return 1.0 },
		Now:         func() time.Time { return now },
		Sleep: func(ctx context.Context, d time.Duration) error {
			now = now.Add(d) // advance the pinned clock instead of sleeping
			return nil
		},
	}
	calls := 0
	_ = p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return errors.New("x")
	})
	// Sleeps 300ms, 600ms consume 900ms; the next (1200ms) would blow
	// the 1s budget, so the loop stops at 3 attempts.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 within the 1s budget", calls)
	}
}

func TestDoValueReturnsValue(t *testing.T) {
	p, _ := testPolicy(3, time.Millisecond)
	calls := 0
	v, err := DoValue(context.Background(), p, func(ctx context.Context) (string, error) {
		calls++
		if calls == 1 {
			return "", errors.New("flaky")
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("got (%q, %v), want (ok, nil)", v, err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{errors.New("x"), Retryable},
		{AsTerminal(errors.New("x")), Terminal},
		{AsOverload(errors.New("x")), Overload},
		{fmt.Errorf("wrapped: %w", AsTerminal(errors.New("x"))), Terminal},
		{context.Canceled, Terminal},
		{context.DeadlineExceeded, Terminal},
		{ErrOpen, Overload},
		{fmt.Errorf("call: %w", ErrOpen), Overload},
		{WithRetryAfter(AsOverload(errors.New("x")), time.Second), Overload},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Error("plain error should carry no Retry-After hint")
	}
	if d, ok := RetryAfterHint(fmt.Errorf("w: %w", WithRetryAfter(errors.New("x"), 3*time.Second))); !ok || d != 3*time.Second {
		t.Errorf("hint = (%v, %v), want (3s, true)", d, ok)
	}
}
