package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFastPrimaryRunsOnce(t *testing.T) {
	h := &Hedger{MinDelay: 50 * time.Millisecond}
	var calls int64
	v, err := Hedge(context.Background(), h, func(ctx context.Context) (string, error) {
		atomic.AddInt64(&calls, 1)
		return "fast", nil
	})
	if err != nil || v != "fast" {
		t.Fatalf("got (%q, %v)", v, err)
	}
	if n := atomic.LoadInt64(&calls); n != 1 {
		t.Fatalf("fast primary hedged anyway: %d calls", n)
	}
}

func TestHedgeRacesSecondAttemptPastBudget(t *testing.T) {
	h := &Hedger{MinDelay: 10 * time.Millisecond}
	var calls int64
	release := make(chan struct{})
	defer close(release)
	v, err := Hedge(context.Background(), h, func(ctx context.Context) (string, error) {
		if atomic.AddInt64(&calls, 1) == 1 {
			// Primary: stuck until the test ends (or cancelled by the
			// hedge winning).
			select {
			case <-release:
			case <-ctx.Done():
			}
			return "slow", ctx.Err()
		}
		return "hedge", nil
	})
	if err != nil || v != "hedge" {
		t.Fatalf("got (%q, %v), want the hedge to win", v, err)
	}
	if n := atomic.LoadInt64(&calls); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	h := &Hedger{MinDelay: time.Millisecond}
	primary := errors.New("primary down")
	var calls int64
	_, err := Hedge(context.Background(), h, func(ctx context.Context) (string, error) {
		if atomic.AddInt64(&calls, 1) == 1 {
			time.Sleep(20 * time.Millisecond) // let the hedge launch and fail first
			return "", primary
		}
		return "", errors.New("hedge down")
	})
	if !errors.Is(err, primary) {
		t.Fatalf("err = %v, want the primary's error", err)
	}
}

func TestHedgeNilHedgerPassesThrough(t *testing.T) {
	v, err := Hedge(context.Background(), nil, func(ctx context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("got (%d, %v)", v, err)
	}
}

func TestHedgerDelayTracksPercentile(t *testing.T) {
	h := &Hedger{Percentile: 0.90, MinDelay: time.Millisecond, MaxDelay: time.Minute}
	// 100 observations: 1..100ms. p90 ≈ 91ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	d := h.Delay()
	if d < 85*time.Millisecond || d > 95*time.Millisecond {
		t.Fatalf("p90 delay = %v, want ≈91ms", d)
	}
}

func TestHedgerDelayClamps(t *testing.T) {
	h := &Hedger{MinDelay: 20 * time.Millisecond, MaxDelay: 30 * time.Millisecond}
	if d := h.Delay(); d != 20*time.Millisecond {
		t.Fatalf("cold-start delay = %v, want MinDelay", d)
	}
	for i := 0; i < 50; i++ {
		h.Observe(time.Second)
	}
	if d := h.Delay(); d != 30*time.Millisecond {
		t.Fatalf("delay = %v, want clamped to MaxDelay", d)
	}
	h2 := &Hedger{MinDelay: 20 * time.Millisecond}
	for i := 0; i < 50; i++ {
		h2.Observe(time.Microsecond)
	}
	if d := h2.Delay(); d != 20*time.Millisecond {
		t.Fatalf("delay = %v, want floored at MinDelay", d)
	}
}
