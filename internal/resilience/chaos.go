package resilience

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ChaosStep is one scripted behaviour of a ChaosTransport. The zero
// value passes the request through untouched.
type ChaosStep struct {
	// Drop severs the connection: the round trip returns a transport
	// error without reaching the inner transport.
	Drop bool
	// Status synthesises a response with this code instead of calling
	// the inner transport; 0 passes through.
	Status int
	// RetryAfter, when non-zero, is sent as a Retry-After header
	// (whole seconds) on the synthesised response.
	RetryAfter time.Duration
	// Body is the synthesised response body; default is a JSON error
	// envelope matching the chat-API error shape.
	Body string
	// Delay is added before the outcome (synthetic or passthrough).
	Delay time.Duration
	// BodyLatency makes the response body slow: each Read stalls this
	// long before yielding, simulating a server that accepts fast but
	// trickles bytes.
	BodyLatency time.Duration
}

// ChaosTransport is an http.RoundTripper that replays a scripted fault
// sequence: request n consumes Script[n]; requests past the end pass
// through to Inner. It makes client-side retry/breaker behaviour
// testable without timing races — drops, 429 bursts with Retry-After,
// 500 storms, and slow bodies all become deterministic.
type ChaosTransport struct {
	// Inner handles passthrough requests; nil uses
	// http.DefaultTransport.
	Inner http.RoundTripper
	// Script is the fault sequence, consumed one step per request.
	Script []ChaosStep

	mu    sync.Mutex
	i     int
	calls int64
}

// Calls reports how many requests reached the transport.
func (t *ChaosTransport) Calls() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

func (t *ChaosTransport) next() (ChaosStep, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	if t.i < len(t.Script) {
		step := t.Script[t.i]
		t.i++
		return step, true
	}
	return ChaosStep{}, false
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	step, scripted := t.next()
	if scripted && step.Delay > 0 {
		if err := SleepContext(req.Context(), step.Delay); err != nil {
			return nil, err
		}
	}
	if scripted && step.Drop {
		return nil, fmt.Errorf("chaos: connection dropped")
	}
	if scripted && step.Status != 0 {
		body := step.Body
		if body == "" {
			body = fmt.Sprintf(`{"error":{"message":"chaos status %d","type":"chaos"}}`, step.Status)
		}
		resp := &http.Response{
			StatusCode: step.Status,
			Status:     http.StatusText(step.Status),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(bytes.NewReader([]byte(body))),
			Request:    req,
		}
		resp.Header.Set("Content-Type", "application/json")
		if step.RetryAfter > 0 {
			secs := int(step.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1 // the header carries whole seconds
			}
			resp.Header.Set("Retry-After", strconv.Itoa(secs))
		}
		if step.BodyLatency > 0 {
			resp.Body = io.NopCloser(&slowReader{r: resp.Body, perRead: step.BodyLatency})
		}
		return resp, nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err == nil && scripted && step.BodyLatency > 0 {
		resp.Body = &slowBody{ReadCloser: resp.Body, perRead: step.BodyLatency}
	}
	return resp, err
}

// slowReader stalls before every Read.
type slowReader struct {
	r       io.Reader
	perRead time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.perRead)
	return s.r.Read(p)
}

// slowBody is slowReader over a passthrough body, keeping Close.
type slowBody struct {
	io.ReadCloser
	perRead time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	time.Sleep(s.perRead)
	return s.ReadCloser.Read(p)
}
