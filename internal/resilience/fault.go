package resilience

import (
	"context"
	"sync"
	"time"

	"repro/internal/simllm"
)

// Chatter is the chat-capable downstream interface this package can
// wrap with faults. It is structurally identical to pas.Chatter (the
// root package cannot be imported from internal/ without a cycle), so a
// *FaultyChatter satisfies pas.Chatter directly.
type Chatter interface {
	Name() string
	Chat(messages []simllm.Message, opt simllm.Options) (string, error)
}

// Fault is one scripted step of a FaultyChatter: wait Delay (honouring
// the context on the ctx-taking path), then fail with Err, or pass the
// call through to the wrapped model when Err is nil.
type Fault struct {
	// Err is returned after Delay; nil lets the call through.
	Err error
	// Delay is added latency before the outcome.
	Delay time.Duration
}

// FaultyChatter wraps a Chatter with a deterministic fault script: call
// n consumes script[n]; calls past the end of the script pass through
// cleanly (or loop from the start with Loop). It implements both the
// plain Chat interface and the context-taking ChatContext used by
// System.EnhanceContext, so the same scripted backend exercises either
// path. Safe for concurrent use; concurrent calls consume script steps
// in arrival order.
type FaultyChatter struct {
	inner  Chatter
	script []Fault
	// Loop replays the script forever instead of passing through after
	// its end — a permanently dead backend is Loop over one fault.
	Loop bool

	mu    sync.Mutex
	i     int
	calls int64
}

// NewFaultyChatter scripts faults in front of inner.
func NewFaultyChatter(inner Chatter, script ...Fault) *FaultyChatter {
	return &FaultyChatter{inner: inner, script: script}
}

// Name reports the wrapped model's name.
func (f *FaultyChatter) Name() string { return f.inner.Name() }

// next pops the scripted fault for this call, if any.
func (f *FaultyChatter) next() (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.Loop && len(f.script) > 0 {
		step := f.script[f.i%len(f.script)]
		f.i++
		return step, true
	}
	if f.i < len(f.script) {
		step := f.script[f.i]
		f.i++
		return step, true
	}
	return Fault{}, false
}

// Calls reports how many Chat/ChatContext calls arrived — the probe
// accounting tests need it to prove a breaker stopped the hammering.
func (f *FaultyChatter) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Chat runs one scripted step without context support (delays are
// slept in full).
func (f *FaultyChatter) Chat(messages []simllm.Message, opt simllm.Options) (string, error) {
	return f.ChatContext(context.Background(), messages, opt)
}

// ChatContext runs one scripted step; a context that ends during the
// scripted delay wins with its own error.
func (f *FaultyChatter) ChatContext(ctx context.Context, messages []simllm.Message, opt simllm.Options) (string, error) {
	step, scripted := f.next()
	if scripted && step.Delay > 0 {
		if err := SleepContext(ctx, step.Delay); err != nil {
			return "", err
		}
	}
	if scripted && step.Err != nil {
		return "", step.Err
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return f.inner.Chat(messages, opt) //paslint:allow ctxpropagate inner is a plain Chatter by design; liveness was checked above and scripted delays already honored ctx
}
