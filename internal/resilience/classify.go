// Package resilience hardens the outbound path of the PAS system: every
// call that leaves the process — chatapi.Client to a public LLM API, the
// reverse proxy to its upstream, System.Enhance to the main model — goes
// through some combination of
//
//   - a context-aware retry executor (capped exponential backoff with
//     full jitter, server Retry-After hints, deadline- and budget-aware),
//   - a per-backend three-state circuit breaker (closed → open →
//     half-open with bounded probe admission), and
//   - a hedger that races a second attempt when the first overruns a
//     latency-percentile budget.
//
// The package also ships the fault-injection doubles that make all of it
// deterministically testable: FaultyChatter scripts error/latency
// sequences at the Chatter level, ChaosTransport scripts drops, 429s,
// bursts of 500s, and slow bodies at the http.RoundTripper level.
//
// PAS is plug-and-play (§3.4): r_e = LLM(cat(p, M_p(p))) is only worth
// deploying if the augmentation layer never makes the downstream call
// less reliable than calling the main model directly. The primitives
// here exist so the serving layer can fail open to the raw prompt
// instead of failing closed with a 5xx.
package resilience

import (
	"context"
	"errors"
	"time"
)

// Class is the retry classification of an error.
type Class int

const (
	// Retryable errors are transient faults — transport drops, 5xx
	// bursts — worth another attempt after a backoff.
	Retryable Class = iota
	// Terminal errors will not improve with repetition: client-side
	// bugs (4xx), cancelled contexts, malformed responses.
	Terminal
	// Overload errors are the far side shedding load (429/503, open
	// breakers, full queues). They are retryable, but the retry delay
	// should respect the server's Retry-After hint when one exists, and
	// they count against circuit-breaker health.
	Overload
)

func (c Class) String() string {
	switch c {
	case Retryable:
		return "retryable"
	case Terminal:
		return "terminal"
	case Overload:
		return "overload"
	}
	return "unknown"
}

// classified wraps an error with an explicit class.
type classified struct {
	err   error
	class Class
}

func (e *classified) Error() string { return e.err.Error() }
func (e *classified) Unwrap() error { return e.err }

// AsTerminal marks err as terminal: Do stops immediately and returns it.
func AsTerminal(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Terminal}
}

// AsRetryable marks err as retryable even when the chain would
// otherwise classify as terminal — e.g. a per-attempt timeout wrapping
// context.DeadlineExceeded, where only the attempt's clock ran out, not
// the caller's.
func AsRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Retryable}
}

// AsOverload marks err as an overload shed from the far side.
func AsOverload(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Overload}
}

// retryAfterError carries a server-provided Retry-After hint.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfter attaches a server Retry-After hint to err; the retry
// executor sleeps exactly the hint instead of its own backoff.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts the server's Retry-After hint from err, if any
// wrapper in the chain carries one.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// Classify reports how the retry executor should treat err. Context
// cancellation and deadline expiry are terminal — the caller's clock ran
// out, repeating cannot help. Explicitly classified errors keep their
// class; ErrOpen (a local breaker refusing the call) is overload.
// Everything else defaults to retryable, the right bias for transport
// errors of unknown shape.
func Classify(err error) Class {
	if err == nil {
		return Terminal // nothing to retry
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Terminal
	}
	if errors.Is(err, ErrOpen) {
		return Overload
	}
	return Retryable
}
