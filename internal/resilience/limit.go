package resilience

import (
	"fmt"
	"sync"
	"time"
)

// Limit is an AIMD (additive-increase, multiplicative-decrease)
// concurrency limit: the adaptive replacement for a static in-flight
// cap. The admission layer asks Current() for the live limit, feeds
// every successful computation's latency into OnSuccess, and reports
// deadline misses and breaker trips through OnOverload.
//
// The dynamics are the classic congestion-control shape:
//
//   - additive increase — after Current() consecutive successes whose
//     latency stayed under Target (one "round trip" at the present
//     limit), the limit grows by one, up to Ceiling. Growth is paced by
//     the limit itself, so a core at limit 40 probes for headroom ten
//     times slower than one at limit 4 — exactly the caution a bigger
//     window warrants.
//   - multiplicative decrease — an overload signal cuts the limit to
//     limit×Backoff (rounded down, floored at Floor), at most once per
//     Cooldown window so one burst of deadline misses counts as one
//     congestion event rather than one cut per shed request.
//   - a slow success (latency ≥ Target) is not an overload, but it
//     resets the success run: the limit holds rather than grows.
//
// All state transitions are driven by the injected clock, so tests pin
// Now and replay schedules deterministically. Safe for concurrent use.
type Limit struct {
	cfg LimitConfig

	mu        sync.Mutex
	current   int
	successes int       // consecutive sub-target successes at this limit
	lastCut   time.Time // zero until the first multiplicative decrease
	raises    int64
	cuts      int64
}

// LimitConfig sizes an adaptive limit. Zero values select defaults.
type LimitConfig struct {
	// Floor is the lowest the limit may fall; the core must always be
	// able to make some progress or it can never observe recovery.
	// Default 1.
	Floor int
	// Ceiling is the highest the limit may climb — the old static
	// MaxInFlight, now an upper bound instead of the operating point.
	// Required (> 0).
	Ceiling int
	// Initial is the starting limit. Default Ceiling (an unloaded core
	// behaves exactly like the static cap until pressure teaches it
	// otherwise).
	Initial int
	// Target is the latency budget a computation should meet; successes
	// under it vote for growth, successes over it hold the line.
	// Default 50ms.
	Target time.Duration
	// Backoff is the multiplicative-decrease factor in (0, 1).
	// Default 0.5.
	Backoff float64
	// Cooldown is the refractory window after a cut during which
	// further overload signals are coalesced into the same congestion
	// event. Default 1s.
	Cooldown time.Duration
	// Now injects the clock; tests pin it. Default time.Now.
	Now func() time.Time
}

func (cfg LimitConfig) withDefaults() (LimitConfig, error) {
	if cfg.Ceiling <= 0 {
		return cfg, fmt.Errorf("resilience: limit Ceiling must be > 0, got %d", cfg.Ceiling)
	}
	if cfg.Floor == 0 {
		cfg.Floor = 1
	}
	if cfg.Floor < 0 || cfg.Floor > cfg.Ceiling {
		return cfg, fmt.Errorf("resilience: limit Floor must be in [1, Ceiling=%d], got %d", cfg.Ceiling, cfg.Floor)
	}
	if cfg.Initial == 0 {
		cfg.Initial = cfg.Ceiling
	}
	if cfg.Initial < cfg.Floor || cfg.Initial > cfg.Ceiling {
		return cfg, fmt.Errorf("resilience: limit Initial must be in [Floor=%d, Ceiling=%d], got %d", cfg.Floor, cfg.Ceiling, cfg.Initial)
	}
	if cfg.Target == 0 {
		cfg.Target = 50 * time.Millisecond
	}
	if cfg.Target < 0 {
		return cfg, fmt.Errorf("resilience: limit Target must be > 0, got %v", cfg.Target)
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 0.5
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		return cfg, fmt.Errorf("resilience: limit Backoff must be in (0, 1), got %g", cfg.Backoff)
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Cooldown < 0 {
		return cfg, fmt.Errorf("resilience: limit Cooldown must be > 0, got %v", cfg.Cooldown)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg, nil
}

// NewLimit builds an adaptive concurrency limit.
func NewLimit(cfg LimitConfig) (*Limit, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Limit{cfg: cfg, current: cfg.Initial}, nil
}

// Current returns the live concurrency limit, always within
// [Floor, Ceiling].
func (l *Limit) Current() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.current
}

// OnSuccess records one successful computation and its latency. A
// sub-target latency extends the success run; Current() of them in a
// row raise the limit by one (additive increase, clamped at Ceiling).
// An over-target latency resets the run so the limit holds.
func (l *Limit) OnSuccess(latency time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if latency >= l.cfg.Target {
		l.successes = 0
		return
	}
	l.successes++
	if l.successes < l.current {
		return
	}
	l.successes = 0
	if l.current < l.cfg.Ceiling {
		l.current++
		l.raises++
	}
}

// OnOverload records an overload signal — a deadline miss while queued
// or a breaker trip — and applies the multiplicative decrease, unless a
// cut already happened within the Cooldown window (a burst of sheds is
// one congestion event).
func (l *Limit) OnOverload() {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	if !l.lastCut.IsZero() && now.Sub(l.lastCut) < l.cfg.Cooldown {
		return
	}
	l.lastCut = now
	l.successes = 0
	next := int(float64(l.current) * l.cfg.Backoff)
	if next < l.cfg.Floor {
		next = l.cfg.Floor
	}
	if next != l.current {
		l.current = next
		l.cuts++
	}
}

// LimitStats is a point-in-time snapshot of an adaptive limit.
type LimitStats struct {
	// Current is the live limit; Floor and Ceiling are its clamps.
	Current int `json:"current"`
	Floor   int `json:"floor"`
	Ceiling int `json:"ceiling"`
	// Raises and Cuts count additive increases and multiplicative
	// decreases applied since construction.
	Raises int64 `json:"raises"`
	Cuts   int64 `json:"cuts"`
}

// Stats snapshots the limit.
func (l *Limit) Stats() LimitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimitStats{
		Current: l.current,
		Floor:   l.cfg.Floor,
		Ceiling: l.cfg.Ceiling,
		Raises:  l.raises,
		Cuts:    l.cuts,
	}
}
