package resilience

import (
	"sync"
	"testing"
	"time"
)

// limitClock is a hand-advanced clock for deterministic limit tests.
type limitClock struct {
	mu sync.Mutex
	t  time.Time
}

func newLimitClock() *limitClock {
	return &limitClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *limitClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *limitClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimit(t *testing.T, cfg LimitConfig) *Limit {
	t.Helper()
	l, err := NewLimit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLimitConfigValidation(t *testing.T) {
	cases := []LimitConfig{
		{},                                  // missing ceiling
		{Ceiling: -1},                       // negative ceiling
		{Ceiling: 4, Floor: 8},              // floor above ceiling
		{Ceiling: 4, Initial: 9},            // initial above ceiling
		{Ceiling: 8, Floor: 4, Initial: 2},  // initial below floor
		{Ceiling: 4, Backoff: 1.0},          // backoff must shrink
		{Ceiling: 4, Backoff: -0.5},         // negative backoff
		{Ceiling: 4, Target: -time.Second},   // negative target
		{Ceiling: 4, Cooldown: -time.Second}, // negative cooldown
	}
	for _, cfg := range cases {
		if _, err := NewLimit(cfg); err == nil {
			t.Errorf("NewLimit(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestLimitDefaultsStartAtCeiling(t *testing.T) {
	l := newTestLimit(t, LimitConfig{Ceiling: 32})
	if got := l.Current(); got != 32 {
		t.Fatalf("initial limit = %d, want Ceiling 32", got)
	}
	s := l.Stats()
	if s.Floor != 1 || s.Ceiling != 32 || s.Current != 32 {
		t.Fatalf("stats = %+v, want floor 1 / ceiling 32 / current 32", s)
	}
}

// TestLimitAdditiveIncrease pins the growth pacing: the limit needs
// Current() consecutive sub-target successes per +1, so climbing from
// 2 to 5 costs 2, then 3, then 4 successes.
func TestLimitAdditiveIncrease(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 1, Ceiling: 5, Initial: 2,
		Target: 50 * time.Millisecond, Now: clock.Now,
	})
	fast := 10 * time.Millisecond
	for want := 3; want <= 5; want++ {
		for i := 0; i < want-1; i++ {
			l.OnSuccess(fast)
		}
		if got := l.Current(); got != want {
			t.Fatalf("after %d successes at limit %d: limit = %d, want %d", want-1, want-1, got, want)
		}
	}
	// At the ceiling further successes are a no-op.
	for i := 0; i < 50; i++ {
		l.OnSuccess(fast)
	}
	if got := l.Current(); got != 5 {
		t.Fatalf("limit climbed past ceiling: %d", got)
	}
	if s := l.Stats(); s.Raises != 3 {
		t.Fatalf("raises = %d, want 3", s.Raises)
	}
}

// TestLimitSlowSuccessHoldsLine: an over-target latency is not an
// overload, but it resets the success run, so the limit neither grows
// nor shrinks.
func TestLimitSlowSuccessHoldsLine(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 1, Ceiling: 8, Initial: 2,
		Target: 50 * time.Millisecond, Now: clock.Now,
	})
	// One fast success, then a slow one, repeatedly: the run never
	// reaches Current()=2, so the limit is pinned.
	for i := 0; i < 20; i++ {
		l.OnSuccess(10 * time.Millisecond)
		l.OnSuccess(80 * time.Millisecond)
	}
	if got := l.Current(); got != 2 {
		t.Fatalf("limit = %d after alternating fast/slow, want 2", got)
	}
}

// TestLimitMultiplicativeDecrease pins the cut sequence 32 → 16 → 8 →
// 4 → 2 (floor) under repeated overloads spaced past the cooldown.
func TestLimitMultiplicativeDecrease(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 2, Ceiling: 32,
		Backoff: 0.5, Cooldown: time.Second, Now: clock.Now,
	})
	for _, want := range []int{16, 8, 4, 2, 2} {
		l.OnOverload()
		if got := l.Current(); got != want {
			t.Fatalf("after cut: limit = %d, want %d", got, want)
		}
		clock.Advance(time.Second)
	}
	if s := l.Stats(); s.Cuts != 4 { // the floor-clamped repeat is not a cut
		t.Fatalf("cuts = %d, want 4", s.Cuts)
	}
}

// TestLimitCooldownCoalescesBurst: a burst of overload signals inside
// one cooldown window is a single congestion event — one cut.
func TestLimitCooldownCoalescesBurst(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 1, Ceiling: 32,
		Backoff: 0.5, Cooldown: time.Second, Now: clock.Now,
	})
	for i := 0; i < 100; i++ {
		l.OnOverload()
		clock.Advance(time.Millisecond) // 100 signals inside one window
	}
	if got := l.Current(); got != 16 {
		t.Fatalf("limit = %d after one burst, want a single cut to 16", got)
	}
	clock.Advance(time.Second)
	l.OnOverload()
	if got := l.Current(); got != 8 {
		t.Fatalf("limit = %d after cooldown elapsed, want 8", got)
	}
}

// TestLimitOverloadResetsSuccessRun: successes accumulated before a cut
// must not count toward growth after it.
func TestLimitOverloadResetsSuccessRun(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 1, Ceiling: 16, Initial: 4,
		Target: 50 * time.Millisecond, Backoff: 0.5, Cooldown: time.Second, Now: clock.Now,
	})
	l.OnSuccess(time.Millisecond)
	l.OnSuccess(time.Millisecond)
	l.OnSuccess(time.Millisecond) // run = 3 of the 4 needed
	l.OnOverload()                // cut to 2, run resets
	if got := l.Current(); got != 2 {
		t.Fatalf("limit = %d after cut, want 2", got)
	}
	l.OnSuccess(time.Millisecond) // run = 1 of the 2 now needed
	if got := l.Current(); got != 2 {
		t.Fatalf("limit grew from a stale pre-cut success run: %d", got)
	}
	l.OnSuccess(time.Millisecond)
	if got := l.Current(); got != 3 {
		t.Fatalf("limit = %d, want additive recovery to 3", got)
	}
}

// TestLimitDeterministicReplay drives the same schedule twice and
// demands identical trajectories — the acceptance criterion that the
// limiter is deterministic under a test clock.
func TestLimitDeterministicReplay(t *testing.T) {
	run := func() []int {
		clock := newLimitClock()
		l := newTestLimit(t, LimitConfig{
			Floor: 1, Ceiling: 24, Initial: 8,
			Target: 50 * time.Millisecond, Backoff: 0.5,
			Cooldown: time.Second, Now: clock.Now,
		})
		var traj []int
		for step := 0; step < 400; step++ {
			switch {
			case step%37 == 36:
				l.OnOverload()
			case step%11 == 10:
				l.OnSuccess(90 * time.Millisecond) // slow
			default:
				l.OnSuccess(5 * time.Millisecond)
			}
			clock.Advance(100 * time.Millisecond)
			traj = append(traj, l.Current())
		}
		return traj
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestLimitNeverExceedsCeiling hammers the limit from many goroutines
// with a mix of signals and asserts the clamp invariant throughout.
func TestLimitNeverExceedsCeiling(t *testing.T) {
	clock := newLimitClock()
	l := newTestLimit(t, LimitConfig{
		Floor: 1, Ceiling: 6, Initial: 3,
		Target: 50 * time.Millisecond, Cooldown: 10 * time.Millisecond, Now: clock.Now,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g == 0 && i%100 == 99 {
					clock.Advance(20 * time.Millisecond)
					l.OnOverload()
				} else {
					l.OnSuccess(time.Millisecond)
				}
				if cur := l.Current(); cur > 6 || cur < 1 {
					t.Errorf("limit %d escaped [1, 6]", cur)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
