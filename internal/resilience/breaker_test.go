package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// clockedBreaker returns a breaker on a pinned, manually advanced clock.
func clockedBreaker(threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Now:       func() time.Time { return now },
	})
	return b, &now
}

func mustAllow(t *testing.T, b *Breaker) func(bool) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow rejected in state %v: %v", b.State(), err)
	}
	return done
}

func TestBreakerOpensAfterThresholdFailures(t *testing.T) {
	b, _ := clockedBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if b.State() != Closed {
			t.Fatalf("failure %d: state %v, want closed", i, b.State())
		}
		mustAllow(t, b)(false)
	}
	if b.State() != Open {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
	st := b.Stats()
	if st.Opens != 1 || st.Failures != 3 || st.Rejections != 1 || st.State != "open" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := clockedBreaker(3, time.Second)
	mustAllow(t, b)(false)
	mustAllow(t, b)(false)
	mustAllow(t, b)(true) // streak broken
	mustAllow(t, b)(false)
	mustAllow(t, b)(false)
	if b.State() != Closed {
		t.Fatalf("state %v, want closed — success must reset the streak", b.State())
	}
	mustAllow(t, b)(false)
	if b.State() != Open {
		t.Fatal("third consecutive failure should open")
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b, now := clockedBreaker(1, time.Second)
	mustAllow(t, b)(false) // trip
	if b.State() != Open {
		t.Fatal("want open")
	}
	*now = now.Add(time.Second) // cooldown elapses
	if b.State() != HalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	probe := mustAllow(t, b) // the single probe
	// While the probe is in flight, everyone else is rejected — the
	// dead backend sees at most one request per half-open window.
	for i := 0; i < 5; i++ {
		if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
			t.Fatalf("half-open admitted a second probe (i=%d)", i)
		}
	}
	probe(true)
	if b.State() != Closed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if st := b.Stats(); st.Probes != 1 {
		t.Fatalf("probes = %d, want 1", st.Probes)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, now := clockedBreaker(1, time.Second)
	mustAllow(t, b)(false)
	*now = now.Add(time.Second)
	mustAllow(t, b)(false) // probe fails
	if b.State() != Open {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("reopened breaker should reject")
	}
	*now = now.Add(time.Second)
	done := mustAllow(t, b)
	done(true)
	if b.State() != Closed {
		t.Fatal("second probe success should close")
	}
	if st := b.Stats(); st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

func TestBreakerDoneIsIdempotent(t *testing.T) {
	b, now := clockedBreaker(1, time.Second)
	mustAllow(t, b)(false)
	*now = now.Add(time.Second)
	probe := mustAllow(t, b)
	probe(true)
	probe(true) // double-report must not corrupt probe accounting
	probe(false)
	if b.State() != Closed {
		t.Fatalf("state %v, want closed after single recorded success", b.State())
	}
	if st := b.Stats(); st.Successes != 1 || st.Failures != 1 {
		t.Fatalf("double done recorded twice: %+v", st)
	}
}

func TestBreakerDoClassifiesTerminalAsHealthy(t *testing.T) {
	b, _ := clockedBreaker(2, time.Second)
	// Terminal errors (caller bugs, 4xx) say nothing about backend
	// health and must not open the circuit.
	for i := 0; i < 10; i++ {
		if err := b.Do(func() error { return AsTerminal(errors.New("bad request")) }); err == nil {
			t.Fatal("Do should propagate the fn error")
		}
	}
	if b.State() != Closed {
		t.Fatalf("state %v, want closed — 4xx must not trip the breaker", b.State())
	}
	for i := 0; i < 2; i++ {
		_ = b.Do(func() error { return errors.New("backend down") })
	}
	if b.State() != Open {
		t.Fatal("retryable failures should trip the breaker")
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Do = %v, want ErrOpen", err)
	}
}

func TestBreakerConcurrentOutcomes(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1 << 30, Cooldown: time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			done, err := b.Allow()
			if err != nil {
				return
			}
			done(i%2 == 0)
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.Successes+st.Failures != 64 {
		t.Fatalf("outcomes lost under concurrency: %+v", st)
	}
}
