package resilience

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Policy is a retry schedule: capped exponential backoff with full
// jitter, bounded by attempt count, an optional elapsed-time budget, and
// the caller's context deadline. The zero value of any field selects its
// default, so Policy{} is a usable three-attempt schedule.
type Policy struct {
	// MaxAttempts bounds total tries (first call included). Default 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt n waits
	// up to BaseDelay·2ⁿ (full jitter picks uniformly in [0, cap]).
	// Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Default 2s.
	MaxDelay time.Duration
	// Budget bounds the whole call — attempts plus sleeps. When the next
	// sleep would overrun it, Do returns the last error instead of
	// burning the remaining time. 0 means no budget (the context
	// deadline still applies).
	Budget time.Duration
	// Rand is the jitter source in [0,1); tests pin it. Default: the
	// shared math/rand source.
	Rand func() float64
	// Sleep waits d or until ctx ends; tests replace it to observe the
	// schedule without real sleeping. Default sleeps on a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the clock for budget accounting; tests pin it. Default
	// time.Now.
	Now func() time.Time
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Rand == nil {
		p.Rand = jitterRand
	}
	if p.Sleep == nil {
		p.Sleep = SleepContext
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// jitterMu serializes the shared default jitter source; Policies built
// by concurrent goroutines share it.
var (
	jitterMu sync.Mutex
	// The production default wants unpredictable jitter so a fleet of
	// clients retrying the same outage decorrelates; tests that need a
	// reproducible schedule call SeedJitter or pin Policy.Rand.
	jitterSrc = rand.New(rand.NewSource(time.Now().UnixNano())) //paslint:allow determinism production jitter must decorrelate across processes; tests inject SeedJitter or Policy.Rand
)

func jitterRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterSrc.Float64()
}

// SeedJitter replaces the shared jitter source with one seeded
// deterministically, making every Policy that uses the default Rand
// reproducible. It is the test hook for code paths that build Policies
// internally (chatapi.Client, serving.Core) where Policy.Rand cannot be
// injected from outside.
func SeedJitter(seed int64) {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	jitterSrc = rand.New(rand.NewSource(seed))
}

// SleepContext waits d or until ctx ends, whichever is first.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn under the policy: terminal errors (see Classify) return
// immediately, retryable and overload errors are retried with capped
// full-jitter backoff — or exactly the server's Retry-After hint when
// the error carries one — until attempts, the budget, or the context
// deadline run out. The returned error is always the most recent fn
// error (or ctx.Err() when a sleep was cancelled), never a synthetic
// wrapper, so callers can inspect it normally.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	_, err := DoValue(ctx, p, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, fn(ctx)
	})
	return err
}

// DoValue is Do for functions that return a value.
func DoValue[T any](ctx context.Context, p Policy, fn func(ctx context.Context) (T, error)) (T, error) {
	p = p.withDefaults()
	start := p.Now()
	var zero T
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, err
		}
		v, err := fn(ctx)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if Classify(err) == Terminal {
			return zero, err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		delay := p.backoff(attempt, err)
		if !p.affordable(ctx, start, delay) {
			return zero, lastErr
		}
		retriesTotal.Add(1)
		obs.AddEvent(ctx, "retry.attempt",
			"attempt", strconv.Itoa(attempt+1),
			"delay_ms", strconv.FormatInt(delay.Milliseconds(), 10),
			"cause", err.Error())
		if serr := p.Sleep(ctx, delay); serr != nil {
			return zero, lastErr
		}
	}
	return zero, lastErr
}

// Delay returns the backoff before retry number attempt+1 under the
// policy's capped full-jitter envelope, for callers that run their own
// loop (the ring health prober spaces probes of a down replica with it)
// instead of going through Do. The shared jitter source applies, so
// SeedJitter pins it for tests.
func (p Policy) Delay(attempt int) time.Duration {
	return p.withDefaults().backoff(attempt, nil)
}

// backoff picks the sleep before retry number attempt+1: the server's
// Retry-After hint verbatim when err carries one (the server knows its
// own recovery horizon better than our jitter does), otherwise full
// jitter over the capped exponential envelope.
func (p Policy) backoff(attempt int, err error) time.Duration {
	if hint, ok := RetryAfterHint(err); ok && hint > 0 {
		return hint
	}
	cap := p.BaseDelay << uint(attempt)
	if cap > p.MaxDelay || cap <= 0 { // <=0: shift overflow
		cap = p.MaxDelay
	}
	return time.Duration(p.Rand() * float64(cap))
}

// affordable reports whether sleeping delay still leaves room to do
// anything useful: both the elapsed budget and the context deadline must
// survive the sleep. Retrying with no time left only converts a
// descriptive upstream error into context.DeadlineExceeded.
func (p Policy) affordable(ctx context.Context, start time.Time, delay time.Duration) bool {
	now := p.Now()
	if p.Budget > 0 && now.Add(delay).Sub(start) > p.Budget {
		return false
	}
	if dl, ok := ctx.Deadline(); ok && now.Add(delay).After(dl) {
		return false
	}
	return true
}
