package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simllm"
)

func TestFaultyChatterScript(t *testing.T) {
	inner := simllm.MustModel(simllm.GPT40613)
	boom := errors.New("backend exploded")
	f := NewFaultyChatter(inner,
		Fault{Err: boom},
		Fault{}, // clean passthrough
	)
	msgs := []simllm.Message{{Role: "user", Content: "Explain how tides form."}}
	if _, err := f.Chat(msgs, simllm.Options{}); !errors.Is(err, boom) {
		t.Fatalf("step 1: err = %v, want scripted %v", err, boom)
	}
	out, err := f.Chat(msgs, simllm.Options{})
	if err != nil || out == "" {
		t.Fatalf("step 2: got (%q, %v), want passthrough", out, err)
	}
	// Script exhausted: calls keep passing through.
	if _, err := f.Chat(msgs, simllm.Options{}); err != nil {
		t.Fatalf("post-script call failed: %v", err)
	}
	if f.Calls() != 3 {
		t.Fatalf("calls = %d, want 3", f.Calls())
	}
}

func TestFaultyChatterLoopNeverRecovers(t *testing.T) {
	inner := simllm.MustModel(simllm.GPT40613)
	f := NewFaultyChatter(inner, Fault{Err: errors.New("dead")})
	f.Loop = true
	for i := 0; i < 5; i++ {
		if _, err := f.Chat([]simllm.Message{{Role: "user", Content: "x"}}, simllm.Options{}); err == nil {
			t.Fatalf("call %d succeeded through a looped dead backend", i)
		}
	}
}

func TestFaultyChatterDelayHonorsContext(t *testing.T) {
	inner := simllm.MustModel(simllm.GPT40613)
	f := NewFaultyChatter(inner, Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.ChatContext(ctx, []simllm.Message{{Role: "user", Content: "x"}}, simllm.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("scripted delay ignored the context")
	}
}

func TestChaosTransportScript(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer upstream.Close()

	ct := &ChaosTransport{Script: []ChaosStep{
		{Drop: true},
		{Status: 429, RetryAfter: 2 * time.Second},
		{Status: 500},
	}}
	client := &http.Client{Transport: ct}

	if _, err := client.Get(upstream.URL); err == nil {
		t.Fatal("dropped connection should error")
	}
	resp, err := client.Get(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("step 2: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = client.Get(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("step 3: status %d, want 500", resp.StatusCode)
	}
	// Script exhausted: passthrough to the real server.
	resp, err = client.Get(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "real" {
		t.Fatalf("passthrough got (%d, %q)", resp.StatusCode, body)
	}
	if ct.Calls() != 4 {
		t.Fatalf("calls = %d, want 4", ct.Calls())
	}
}

func TestChaosTransportSlowBody(t *testing.T) {
	ct := &ChaosTransport{Script: []ChaosStep{
		{Status: 200, Body: strings.Repeat("x", 64), BodyLatency: 5 * time.Millisecond},
	}}
	client := &http.Client{Transport: ct}
	resp, err := client.Get("http://chaos.invalid/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	start := time.Now()
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) != 64 {
		t.Fatalf("read (%d bytes, %v)", len(body), err)
	}
	// At least one stalled read happened.
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("body was not slow")
	}
}

func TestChaosTransportDelayHonorsContext(t *testing.T) {
	ct := &ChaosTransport{Script: []ChaosStep{{Delay: 10 * time.Second, Status: 200}}}
	client := &http.Client{Transport: ct}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://chaos.invalid/", nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("delayed chaos step should fail when the context ends")
	}
	if time.Since(start) > time.Second {
		t.Fatal("chaos delay ignored the context")
	}
}
