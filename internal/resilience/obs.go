package resilience

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Package-wide counters for the outcomes that matter operationally:
// every retry re-attempt and every hedge launch, whichever Policy or
// Hedger produced them. Per-instance detail (a specific breaker's
// state) is exported by the owner of that instance; these totals answer
// the fleet-level question "how much extra work is resilience creating".
var (
	retriesTotal atomic.Int64
	hedgesTotal  atomic.Int64
)

// RegisterMetrics exposes the package counters on reg under the
// pas_resilience_ namespace, read at scrape time.
func RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(e *obs.Emitter) {
		e.Counter("pas_resilience_retries_total",
			"Retry re-attempts across all policies.", float64(retriesTotal.Load()))
		e.Counter("pas_resilience_hedges_total",
			"Hedge second attempts launched.", float64(hedgesTotal.Load()))
	})
}
