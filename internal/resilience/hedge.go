package resilience

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Hedger decides when a request has waited long enough that racing a
// second attempt is cheaper than waiting out the straggler. It tracks a
// sliding window of observed latencies and hedges after the configured
// percentile of that window (so the hedge fires only for the slow tail),
// clamped to [MinDelay, MaxDelay]. Until enough observations exist it
// uses MinDelay.
//
// Hedging duplicates work by design — only hedge idempotent calls.
type Hedger struct {
	// Percentile in (0,1] of the observed latency window after which
	// the second attempt launches. Default 0.95.
	Percentile float64
	// MinDelay floors the hedge delay (and serves as the cold-start
	// delay before any observations). Default 50ms.
	MinDelay time.Duration
	// MaxDelay caps the hedge delay. Default 2s.
	MaxDelay time.Duration

	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

// hedgeWindow bounds the latency window; small enough to adapt fast.
const hedgeWindow = 256

func (h *Hedger) percentile() float64 {
	if h.Percentile <= 0 || h.Percentile > 1 {
		return 0.95
	}
	return h.Percentile
}

func (h *Hedger) minDelay() time.Duration {
	if h.MinDelay <= 0 {
		return 50 * time.Millisecond
	}
	return h.MinDelay
}

func (h *Hedger) maxDelay() time.Duration {
	if h.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return h.MaxDelay
}

// Observe records one successful-attempt latency.
func (h *Hedger) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buf == nil {
		h.buf = make([]time.Duration, hedgeWindow)
	}
	h.buf[h.next] = d
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.full = true
	}
}

// Delay returns the current hedge trigger: the configured percentile of
// the observed window, clamped to [MinDelay, MaxDelay].
func (h *Hedger) Delay() time.Duration {
	h.mu.Lock()
	n := h.next
	if h.full {
		n = len(h.buf)
	}
	window := make([]time.Duration, n)
	copy(window, h.buf[:n])
	h.mu.Unlock()
	if len(window) == 0 {
		return h.minDelay()
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(h.percentile() * float64(len(window)))
	if idx >= len(window) {
		idx = len(window) - 1
	}
	d := window[idx]
	if min := h.minDelay(); d < min {
		d = min
	}
	if max := h.maxDelay(); d > max {
		d = max
	}
	return d
}

// hedgeResult carries one attempt's outcome to the selector.
type hedgeResult[T any] struct {
	val     T
	err     error
	elapsed time.Duration
	primary bool
}

// Hedge runs fn, and if it has not finished after h.Delay(), races a
// second invocation; the first result to arrive wins and the loser is
// cancelled through its context. Both failing returns the primary's
// error. The winner's latency feeds the percentile window, so the
// trigger tracks the backend's current speed. A nil h never hedges.
func Hedge[T any](ctx context.Context, h *Hedger, fn func(ctx context.Context) (T, error)) (T, error) {
	if h == nil {
		return fn(ctx)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan hedgeResult[T], 2)
	launch := func(primary bool) {
		start := time.Now()
		v, err := fn(ctx)
		results <- hedgeResult[T]{val: v, err: err, elapsed: time.Since(start), primary: primary}
	}
	go launch(true)

	timer := time.NewTimer(h.Delay())
	defer timer.Stop()

	launched := 1
	var firstErr error
	for seen := 0; seen < launched; seen++ {
		select {
		case r := <-results:
			if r.err == nil {
				h.Observe(r.elapsed)
				return r.val, nil
			}
			// Prefer the primary's error — it is the undisturbed
			// attempt; the hedge may have died to the shared cancel.
			if r.primary || firstErr == nil {
				firstErr = r.err
			}
		case <-timer.C:
			hedgesTotal.Add(1)
			obs.AddEvent(ctx, "hedge.launch")
			go launch(false)
			launched = 2
			seen-- // the timer firing is not a result
		}
	}
	var zero T
	return zero, firstErr
}
