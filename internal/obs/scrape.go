package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format WriteText emits:
// a parser for Prometheus text format 0.0.4 and a merger that combines
// several members' scrapes into one instance-labeled exposition. It
// exists so a fleet fronted by one proxy can serve a cluster-wide
// /metricsz without adding a metrics dependency — the proxy scrapes
// each member, parses, tags with instance, and re-renders.

// Family is one parsed metric family: the # HELP / # TYPE header plus
// every sample line attributed to it. Histogram families keep their
// _bucket/_sum/_count series as plain samples (Sample.Suffix records
// which), which is exactly what a re-render or a sum needs.
type Family struct {
	Name string
	Help string
	// Type is the TYPE line's value — counter, gauge, histogram,
	// summary, or untyped when the exposition never declared one.
	Type    string
	Samples []Sample
}

// Sample is one exposition line. For histogram series Suffix is
// "_bucket", "_sum" or "_count" and Name is the family name; plain
// families have an empty Suffix.
type Sample struct {
	Name   string
	Suffix string
	Labels []Attr
	Value  float64
}

// ParseExposition reads a text exposition and groups samples into
// families. Unknown comment lines are skipped; a malformed sample or
// label set is an error naming the line. The zero exposition parses to
// an empty slice.
func ParseExposition(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	byName := make(map[string]*Family)
	var order []string
	fam := func(name string) *Family {
		f, ok := byName[name]
		if !ok {
			f = &Family{Name: name, Type: "untyped"}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			kind, rest, _ := cutSpace(rest)
			switch kind {
			case "HELP":
				name, help, _ := cutSpace(rest)
				if name == "" {
					return nil, fmt.Errorf("obs: line %d: HELP without a metric name", lineNo)
				}
				fam(name).Help = unescapeHelp(help)
			case "TYPE":
				name, typ, _ := cutSpace(rest)
				if name == "" || typ == "" {
					return nil, fmt.Errorf("obs: line %d: TYPE needs a name and a type", lineNo)
				}
				fam(name).Type = typ
			default:
				// Plain comment; the format allows them anywhere.
			}
			continue
		}

		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		// Histogram/summary series carry suffixed sample names; fold
		// them into the declared base family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base == s.Name {
				continue
			}
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				s.Suffix = suf
				s.Name = base
				break
			}
		}
		fam(s.Name).Samples = append(fam(s.Name).Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}

	out := make([]Family, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out, nil
}

// parseSampleLine splits `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample %q has no metric name", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	// OpenMetrics bucket lines may carry an exemplar suffix after the
	// value (` # {trace_id="..."} v`); the label block is already
	// consumed, so the first # from here starts the exemplar — drop it.
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	// fields[1], when present, is a timestamp; the merge is a snapshot
	// so it is deliberately dropped.
	return s, nil
}

// labelBlockEnd finds the index of the closing brace of a label block
// starting at s[0] == '{', honoring quoted strings and escapes.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseLabels parses the inside of a {k="v",...} block.
func parseLabels(s string) ([]Attr, error) {
	var out []Attr
	rest := strings.TrimSpace(s)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label %q missing '='", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, fmt.Errorf("label %q value unterminated", key)
			}
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(rest[i+1])
				default:
					b.WriteByte(c)
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, Attr{Key: key, Value: b.String()})
		rest = strings.TrimSpace(rest[i:])
		if strings.HasPrefix(rest, ",") {
			rest = strings.TrimSpace(rest[1:])
		}
	}
	return out, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// ScrapedExposition is one member's parsed /metricsz, tagged with the
// instance identity the merge stamps onto every sample.
type ScrapedExposition struct {
	Instance string
	Families []Family
}

// MergeExpositions combines several members' expositions into one: each
// sample gains an instance="<member>" label (prepended, so a family's
// samples group by member in the sorted output) and families with the
// same name concatenate. HELP and TYPE come from the first member that
// declared them. Series are kept per-instance rather than summed —
// gauges and histogram buckets do not aggregate meaningfully without
// knowing each family's semantics, and a rollup that preserves the
// per-member series loses nothing.
func MergeExpositions(members []ScrapedExposition) []Family {
	byName := make(map[string]*Family)
	var order []string
	for _, m := range members {
		for _, f := range m.Families {
			out, ok := byName[f.Name]
			if !ok {
				out = &Family{Name: f.Name, Help: f.Help, Type: f.Type}
				byName[f.Name] = out
				order = append(order, f.Name)
			}
			if out.Help == "" {
				out.Help = f.Help
			}
			if out.Type == "untyped" && f.Type != "" {
				out.Type = f.Type
			}
			for _, s := range f.Samples {
				tagged := Sample{
					Name:   s.Name,
					Suffix: s.Suffix,
					Value:  s.Value,
					Labels: make([]Attr, 0, len(s.Labels)+1),
				}
				tagged.Labels = append(tagged.Labels, Attr{Key: "instance", Value: m.Instance})
				tagged.Labels = append(tagged.Labels, s.Labels...)
				out.Samples = append(out.Samples, tagged)
			}
		}
	}
	fams := make([]Family, 0, len(order))
	for _, n := range order {
		fams = append(fams, *byName[n])
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams
}

// WriteFamilies renders parsed (or merged) families back to text
// exposition format, deterministically: families sorted by name,
// samples by suffix then label signature.
func WriteFamilies(w io.Writer, fams []Family) error {
	sorted := append([]Family(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for _, f := range sorted {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
		samples := append([]Sample(nil), f.Samples...)
		sort.SliceStable(samples, func(i, j int) bool {
			if samples[i].Suffix != samples[j].Suffix {
				return suffixRank(samples[i].Suffix) < suffixRank(samples[j].Suffix)
			}
			return labelSignature(samples[i].Labels) < labelSignature(samples[j].Labels)
		})
		for _, s := range samples {
			b.WriteString(s.Name)
			b.WriteString(s.Suffix)
			writeLabels(&b, s.Labels, false, 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func suffixRank(s string) int {
	switch s {
	case "_bucket":
		return 0
	case "_sum":
		return 1
	case "_count":
		return 2
	}
	return 3
}

// cutSpace splits at the first run of spaces/tabs.
func cutSpace(s string) (head, tail string, found bool) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}
