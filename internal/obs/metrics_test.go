package obs

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenRegistry builds a registry with one of every instrument kind at
// pinned values, mirroring the families the serving stack exposes.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("pas_requests_total", "Total requests served.").Add(42)
	r.Gauge("pas_inflight", "Requests currently in flight.").Set(3)
	rv := r.CounterVec("pas_cache_ops_total", "Cache operations by verdict.", "verdict")
	rv.With("hit").Add(10)
	rv.With("miss").Add(4)
	h := r.Histogram("pas_request_seconds", "Request latency in seconds.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.RegisterCollector(func(e *Emitter) {
		e.Gauge("pas_breaker_state", "Breaker state (0 closed, 1 open).", 0, "name", "llm")
		e.Counter("pas_retries_total", "Retry attempts.", 7)
	})
	return r
}

func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionParses walks the scrape line-by-line as a Prometheus
// scraper would: every line is a comment or `name{labels} value`, every
// family has HELP and TYPE before its samples, names carry the pas_
// prefix, and histogram buckets are monotone and cumulative.
func TestExpositionParses(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}

	type famState struct{ help, typ bool }
	fams := map[string]*famState{}
	current := ""
	buckets := map[string][]float64{} // histogram name -> cumulative counts seen, per label sig
	var lastLE, lastCount float64
	lastSig := ""

	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			current = parts[0]
			if fams[current] != nil {
				t.Fatalf("line %d: family %s emitted twice", ln+1, current)
			}
			fams[current] = &famState{help: true}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 || parts[0] != current {
				t.Fatalf("line %d: TYPE out of order: %q (current family %s)", ln+1, line, current)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			fams[current].typ = true
			continue
		}

		// Sample line: name{labels} value
		name := ""
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			name, labels = line[:i], line[i+1:j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: want `name value`, got %q", ln+1, line)
		}
		if name == "" {
			name = fields[0]
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, fields[1], err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !strings.HasPrefix(base, "pas_") {
			t.Errorf("line %d: metric %s missing pas_ prefix", ln+1, name)
		}
		if base != current {
			t.Errorf("line %d: sample %s under family %s", ln+1, name, current)
		}
		st := fams[current]
		if st == nil || !st.help || !st.typ {
			t.Fatalf("line %d: sample before HELP/TYPE: %q", ln+1, name)
		}

		if strings.HasSuffix(name, "_bucket") {
			// Monotone, cumulative buckets within one label signature.
			le := ""
			sig := ""
			for _, kv := range strings.Split(labels, ",") {
				if strings.HasPrefix(kv, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(kv, `le="`), `"`)
				} else {
					sig += kv + ";"
				}
			}
			var bound float64
			if le == "+Inf" {
				bound = infLE
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("line %d: bad le %q", ln+1, le)
			}
			key := name + "|" + sig
			if key != lastSig {
				lastSig, lastLE, lastCount = key, -1, 0
			}
			if bound != infLE && bound <= lastLE {
				t.Errorf("line %d: bucket bounds not ascending: %v after %v", ln+1, bound, lastLE)
			}
			if val < lastCount {
				t.Errorf("line %d: bucket counts not cumulative: %v after %v", ln+1, val, lastCount)
			}
			lastLE, lastCount = bound, val
			buckets[key] = append(buckets[key], val)
		}
	}

	for name, st := range fams {
		if !st.help || !st.typ {
			t.Errorf("family %s missing HELP or TYPE", name)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
}

const infLE = 1e308

func TestHistogramCumulativeCounts(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pas_h", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`pas_h_bucket{le="1"} 1`,
		`pas_h_bucket{le="2"} 2`,
		`pas_h_bucket{le="4"} 3`,
		`pas_h_bucket{le="+Inf"} 4`,
		`pas_h_sum 105`,
		`pas_h_count 4`,
	}
	out := b.String()
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
}

func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pas_x_total", "x")
	c2 := r.Counter("pas_x_total", "x")
	c1.Inc()
	c2.Inc()
	if c1.Value() != 2 {
		t.Fatalf("re-registered counter is a different instrument: %v", c1.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("pas_x_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("pas_esc_total", "esc", "path").With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `pas_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaped label missing; got:\n%s", b.String())
	}
}

func TestHandlerJSONFallback(t *testing.T) {
	r := goldenRegistry()
	jsonCalled := false
	h := r.HandlerWithJSON(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		jsonCalled = true
		w.Header().Set("Content-Type", "application/json")
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != TextContentType {
		t.Fatalf("default content type = %q, want %q", ct, TextContentType)
	}
	if !strings.Contains(rec.Body.String(), "pas_requests_total 42") {
		t.Fatalf("text body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz?format=json", nil))
	if !jsonCalled {
		t.Fatal("?format=json did not reach the JSON fallback")
	}
}

func TestResponseRecorderWrapOnce(t *testing.T) {
	inner := httptest.NewRecorder()
	rr := WrapResponseWriter(inner)
	if again := WrapResponseWriter(rr); again != rr {
		t.Fatal("WrapResponseWriter re-wrapped an existing recorder")
	}
	if rr.StatusOr200() != http.StatusOK {
		t.Fatalf("StatusOr200 before write = %d", rr.StatusOr200())
	}
	if rr.Status() != 0 {
		t.Fatalf("StatusOr200 mutated the recorder: Status() = %d", rr.Status())
	}
	if _, err := rr.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if rr.Status() != http.StatusOK || rr.BytesWritten() != 5 {
		t.Fatalf("after write: status=%d bytes=%d", rr.Status(), rr.BytesWritten())
	}

	rr2 := WrapResponseWriter(httptest.NewRecorder())
	rr2.WriteHeader(http.StatusTeapot)
	if rr2.Status() != http.StatusTeapot {
		t.Fatalf("explicit status lost: %d", rr2.Status())
	}
}
