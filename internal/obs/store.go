package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// traceStore holds finished traces: a ring of the most recent and a
// bounded list of the slowest. Memory is bounded by
// (MaxTraces + MaxSlow) × MaxSpansPerTrace spans.
type traceStore struct {
	mu      sync.Mutex
	recent  []*traceRec // ring, oldest overwritten first
	next    int
	filled  bool
	slow    []*traceRec // sorted by root duration, longest first
	maxSlow int

	kept      atomic.Int64
	discarded atomic.Int64
}

func newTraceStore(maxRecent, maxSlow int) *traceStore {
	return &traceStore{recent: make([]*traceRec, maxRecent), maxSlow: maxSlow}
}

func (st *traceStore) add(rec *traceRec) {
	st.kept.Add(1)
	rec.mu.Lock()
	dur := rec.rootDur
	rec.mu.Unlock()
	st.mu.Lock()
	st.recent[st.next] = rec
	st.next++
	if st.next == len(st.recent) {
		st.next = 0
		st.filled = true
	}
	// Keep the slow list sorted; a trace slower than the current
	// slowest MaxSlow-th displaces it.
	i := sort.Search(len(st.slow), func(i int) bool {
		st.slow[i].mu.Lock()
		d := st.slow[i].rootDur
		st.slow[i].mu.Unlock()
		return d < dur
	})
	if i < st.maxSlow {
		st.slow = append(st.slow, nil)
		copy(st.slow[i+1:], st.slow[i:])
		st.slow[i] = rec
		if len(st.slow) > st.maxSlow {
			st.slow = st.slow[:st.maxSlow]
		}
	}
	st.mu.Unlock()
}

// TraceSummary is one stored trace in the /debug/traces JSON body.
type TraceSummary struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Error      bool       `json:"error,omitempty"`
	Sampled    bool       `json:"sampled"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanData `json:"spans"`
}

// TracesSnapshot is the /debug/traces body: the most recent kept
// traces (newest first), the slowest, and the store's admission
// counters.
type TracesSnapshot struct {
	Kept      int64          `json:"kept"`
	Discarded int64          `json:"discarded"`
	Recent    []TraceSummary `json:"recent"`
	Slowest   []TraceSummary `json:"slowest"`
}

func summarize(rec *traceRec) TraceSummary {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s := TraceSummary{
		TraceID:    rec.traceID.String(),
		Root:       rec.rootName,
		Start:      rec.start,
		DurationMs: durationMs(rec.rootDur),
		Error:      rec.errored,
		Sampled:    rec.head,
		Dropped:    rec.dropped,
		Spans:      make([]SpanData, len(rec.spans)),
	}
	copy(s.Spans, rec.spans)
	return s
}

// Snapshot copies the store's current contents.
func (t *Tracer) Snapshot() TracesSnapshot {
	st := t.store
	st.mu.Lock()
	var recs []*traceRec
	// Newest first: walk the ring backwards from the write cursor.
	n := st.next
	if st.filled {
		n = len(st.recent)
	}
	for i := 0; i < n; i++ {
		idx := st.next - 1 - i
		if idx < 0 {
			idx += len(st.recent)
		}
		if st.recent[idx] != nil {
			recs = append(recs, st.recent[idx])
		}
	}
	slow := make([]*traceRec, len(st.slow))
	copy(slow, st.slow)
	st.mu.Unlock()

	snap := TracesSnapshot{
		Kept:      st.kept.Load(),
		Discarded: st.discarded.Load(),
		Recent:    make([]TraceSummary, 0, len(recs)),
		Slowest:   make([]TraceSummary, 0, len(slow)),
	}
	for _, r := range recs {
		snap.Recent = append(snap.Recent, summarize(r))
	}
	for _, r := range slow {
		snap.Slowest = append(snap.Slowest, summarize(r))
	}
	return snap
}

// Handler serves the store as JSON; mount at GET /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(t.Snapshot()); err != nil {
			log.Printf("obs: writing traces: %v", err)
		}
	})
}
