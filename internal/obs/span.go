package obs

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value span or event attribute. Values are strings;
// callers format numbers (SetAttrInt helps with the common case).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time annotation inside a span: a retry attempt,
// a cache verdict, a hedge launch.
type Event struct {
	// Name identifies the event, dot-namespaced ("retry.backoff").
	Name string `json:"name"`
	// AtMs is the offset from the span's start, in milliseconds.
	AtMs float64 `json:"at_ms"`
	// Attrs carries the event's key/value details.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Span is one timed operation inside a trace. Create spans with
// Tracer.StartSpan (roots) or StartSpan (children); a nil *Span is
// valid and every method on it is a no-op, so instrumentation never
// branches on whether tracing is enabled.
type Span struct {
	tracer *Tracer
	rec    *traceRec
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	root   bool

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	failed bool
	status string
	ended  bool
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetAttrInt records an integer attribute on the span.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetAttrBool records a boolean attribute on the span.
func (s *Span) SetAttrBool(key string, value bool) {
	s.SetAttr(key, strconv.FormatBool(value))
}

// AddEvent appends an event at the current time; kv lists attribute
// key/value pairs (a trailing odd key gets an empty value).
func (s *Span) AddEvent(name string, kv ...string) {
	if s == nil {
		return
	}
	at := s.tracer.now().Sub(s.start)
	ev := Event{Name: name, AtMs: durationMs(at)}
	for i := 0; i < len(kv); i += 2 {
		a := Attr{Key: kv[i]}
		if i+1 < len(kv) {
			a.Value = kv[i+1]
		}
		ev.Attrs = append(ev.Attrs, a)
	}
	s.mu.Lock()
	if !s.ended && len(s.events) < maxEventsPerSpan {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// SetError marks the span failed and records the error message. An
// errored span forces its whole trace to be kept regardless of the
// head-sampling verdict.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.failed = true
		s.status = err.Error()
	}
	s.mu.Unlock()
	if s.rec != nil {
		s.rec.noteError()
	}
}

// SetStatus records a human-readable outcome without marking the span
// failed ("degraded", "cache_hit").
func (s *Span) SetStatus(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.status = msg
	}
	s.mu.Unlock()
}

// End finishes the span and hands its data to the trace record; the
// root span's End also submits the trace to the store. End is
// idempotent; spans left un-ended simply never appear in the store.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		Name:       s.name,
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		Start:      s.start,
		DurationMs: durationMs(end.Sub(s.start)),
		Attrs:      s.attrs,
		Events:     s.events,
		Error:      s.failed,
		Status:     s.status,
	}
	s.mu.Unlock()
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}
	if s.rec == nil {
		return
	}
	s.rec.addSpan(data)
	if s.root {
		s.rec.finishRoot(data)
		s.tracer.submit(s.rec)
	}
}

// maxEventsPerSpan bounds per-span event growth; a runaway retry loop
// must not turn one span into an unbounded allocation.
const maxEventsPerSpan = 64

// SpanData is the immutable record of a finished span, shaped for the
// /debug/traces JSON body.
type SpanData struct {
	Name       string    `json:"name"`
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Events     []Event   `json:"events,omitempty"`
	Error      bool      `json:"error,omitempty"`
	Status     string    `json:"status,omitempty"`
}

func durationMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
