// Package obs is the zero-dependency observability layer of the PAS
// serving stack: distributed tracing with W3C traceparent propagation,
// a unified metrics registry with Prometheus text exposition, and the
// shared HTTP plumbing (response recorder, debug mux) the services
// build their operational surface from.
//
// The paper serves r_e = LLM(cat(p, M_p(p))) through a multi-hop
// pipeline — proxy → serving core → augment stages → model backend —
// and its evaluation hinges on per-stage attribution of latency and
// failure. obs gives every hop the same three primitives:
//
//   - Tracing. A Tracer hands out Spans (StartSpan) that carry
//     attributes, events, and an error status; spans nest through the
//     context, and the trace id travels between processes in the W3C
//     traceparent header (Inject/Extract). Finished traces land in a
//     bounded in-memory store with head sampling plus always-keep
//     promotion for errored and slow traces, browsable at
//     /debug/traces.
//
//   - Metrics. A Registry holds counters, gauges, and bounded
//     histograms — registered instruments for hot-path increments and
//     scrape-time collectors for subsystems that already keep their own
//     counters (the serving core, breakers, caches). One scrape at
//     /metricsz serves the whole process in Prometheus text exposition
//     format under the pas_ namespace.
//
//   - Profiling and debug surface. DebugMux bundles net/http/pprof,
//     /debug/traces, and /metricsz for a separate -debug-addr listener,
//     so the debug surface never shares the serving port.
//
// Everything is stdlib-only and safe for concurrent use. Every entry
// point is nil-tolerant: code instrumented with obs runs unchanged — a
// handful of nanoseconds per call — when no tracer or registry is
// installed, which is what keeps the cached hot path within its
// latency budget when observability is off.
package obs
