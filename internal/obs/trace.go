package obs

import (
	"context"
	"encoding/hex"
	"net/http"
)

// TraceID identifies one request's journey across every service hop.
type TraceID [16]byte

// String returns the 32-char lowercase hex form used on the wire.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID identifies one operation within a trace.
type SpanID [8]byte

// String returns the 16-char lowercase hex form used on the wire.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated part of a span: enough to parent remote
// children and to carry the sampling decision downstream.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the upstream head-sampling verdict. A downstream hop
	// honors it so one user request is either traced on every hop or on
	// none (error/slow promotion can still keep an unsampled trace).
	Sampled bool
}

// Valid reports whether both ids are non-zero, per the W3C invariants.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// TraceparentHeader is the W3C Trace Context header name.
const TraceparentHeader = "traceparent"

// Traceparent renders the context as a version-00 traceparent value:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any known-length version except the forbidden 0xff, and rejects
// malformed fields and all-zero ids, per the spec: a malformed header
// means the caller must start a fresh root trace.
func ParseTraceparent(v string) (SpanContext, bool) {
	// Fixed layout: 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id)
	// + 1 + 2 (flags) = 55 bytes. Future versions may append fields
	// after the flags, separated by a dash.
	if len(v) < 55 {
		return SpanContext{}, false
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	version, ok := hexByte(v[0:2])
	if !ok || version == 0xff {
		return SpanContext{}, false
	}
	if len(v) > 55 && (version == 0 || v[55] != '-') {
		// Version 00 is exactly 55 bytes; later versions may carry
		// dash-separated extras.
		return SpanContext{}, false
	}
	var sc SpanContext
	if !decodeLowerHex(sc.TraceID[:], v[3:35]) {
		return SpanContext{}, false
	}
	if !decodeLowerHex(sc.SpanID[:], v[36:52]) {
		return SpanContext{}, false
	}
	flags, ok := hexByte(v[53:55])
	if !ok {
		return SpanContext{}, false
	}
	sc.Sampled = flags&0x01 != 0
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// decodeLowerHex fills dst from exactly len(dst)*2 lowercase hex
// digits; the spec forbids uppercase in traceparent, which is why
// hex.Decode (which accepts both cases) is not used here.
func decodeLowerHex(dst []byte, s string) bool {
	for i := range dst {
		b, ok := hexByte(s[2*i : 2*i+2])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

// hexByte decodes exactly two lowercase hex digits (the spec forbids
// uppercase in traceparent).
func hexByte(s string) (byte, bool) {
	hi, ok1 := hexNibble(s[0])
	lo, ok2 := hexNibble(s[1])
	return hi<<4 | lo, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// ctxKey keys the obs context values.
type ctxKey int

const (
	spanCtxKey ctxKey = iota
	remoteCtxKey
)

// ContextWithRemote records a span context extracted from an incoming
// request; the next StartSpan under ctx becomes its child, continuing
// the distributed trace across the process boundary.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteCtxKey, sc)
}

func remoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteCtxKey).(SpanContext)
	return sc, ok && sc.Valid()
}

// SpanFromContext returns the span active in ctx, or nil. The nil span
// is fully usable: every method is a no-op.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey).(*Span)
	return s
}

// SpanContextFromContext returns the propagation context visible in
// ctx: the active span's, else a remote parent's, else the zero value.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	sc, _ := remoteFromContext(ctx)
	return sc
}

// StartSpan starts a child of the span active in ctx. When ctx carries
// no span (tracing disabled or this request was never admitted to a
// trace) it returns ctx unchanged and a nil span, whose methods all
// no-op — instrumented code needs no tracing-enabled check.
//
// Root spans are started by a Tracer (Tracer.StartSpan), typically in
// the HTTP middleware; everything below uses this function.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.tracer == nil {
		return ctx, nil
	}
	return parent.tracer.StartSpan(ctx, name)
}

// AddEvent appends a point-in-time event to the span active in ctx;
// kv lists attribute key/value pairs. No-op without an active span.
func AddEvent(ctx context.Context, name string, kv ...string) {
	SpanFromContext(ctx).AddEvent(name, kv...)
}

// Inject writes the active span context (or remote parent) into h as a
// traceparent header, propagating the trace to the next hop. No-op
// when ctx carries no valid span context.
func Inject(ctx context.Context, h http.Header) {
	if sc := SpanContextFromContext(ctx); sc.Valid() {
		h.Set(TraceparentHeader, sc.Traceparent())
	}
}

// Extract reads a span context from an incoming request's headers.
// A missing or malformed traceparent returns ok=false: the caller
// starts a fresh root trace, never inherits garbage.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}
