package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{
		TraceID: TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36},
		SpanID:  SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7},
		Sampled: true,
	}
	v := sc.Traceparent()
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if v != want {
		t.Fatalf("Traceparent() = %q, want %q", v, want)
	}
	got, ok := ParseTraceparent(v)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a value we produced", v)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}

	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", valid[:54]},
		{"version 00 with trailing data", valid + "-extra"},
		{"forbidden version ff", "ff" + valid[2:]},
		{"uppercase hex", strings.ToUpper(valid)},
		{"bad separator", strings.Replace(valid, "-", "_", 1)},
		{"non-hex trace id", "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01"},
		{"non-hex flags", valid[:53] + "zz"},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"future version missing dash", "01" + valid[2:] + "x"},
	}
	for _, tc := range cases {
		if _, ok := ParseTraceparent(tc.in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", tc.name, tc.in)
		}
	}
	// Future versions may carry dash-separated extras after the flags.
	future := "01" + valid[2:] + "-extra"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future version with extras %q rejected, want accept", future)
	}
}

func TestExtractInject(t *testing.T) {
	h := http.Header{}
	if _, ok := Extract(h); ok {
		t.Fatal("Extract on empty headers reported ok")
	}
	h.Set(TraceparentHeader, "garbage")
	if _, ok := Extract(h); ok {
		t.Fatal("Extract accepted a garbage traceparent")
	}

	tr := newTestTracer(TraceConfig{})
	ctx, span := tr.StartSpan(context.Background(), "root")
	out := http.Header{}
	Inject(ctx, out)
	got, ok := Extract(out)
	if !ok {
		t.Fatalf("Extract rejected injected header %q", out.Get(TraceparentHeader))
	}
	if got.TraceID != span.Context().TraceID || got.SpanID != span.Context().SpanID {
		t.Fatalf("Extract = %+v, want the injected span context %+v", got, span.Context())
	}

	// Inject without an active span is a no-op.
	empty := http.Header{}
	Inject(context.Background(), empty)
	if empty.Get(TraceparentHeader) != "" {
		t.Fatal("Inject without a span wrote a traceparent")
	}
}

// testClock is a manually advanced clock for deterministic durations.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracer(cfg TraceConfig) *Tracer {
	if cfg.IDSeed == 0 {
		cfg.IDSeed = 42
	}
	if cfg.Now == nil {
		clk := &testClock{t: time.Unix(1700000000, 0)}
		cfg.Now = clk.now
	}
	return NewTracer(cfg)
}

func TestSpanNestingAndStore(t *testing.T) {
	clk := &testClock{t: time.Unix(1700000000, 0)}
	tr := newTestTracer(TraceConfig{Now: clk.now})

	ctx, root := tr.StartSpan(context.Background(), "serve")
	cctx, child := StartSpan(ctx, "cache.lookup")
	child.SetStatus("hit")
	clk.advance(5 * time.Millisecond)
	child.End()
	_, grand := StartSpan(cctx, "model.call")
	grand.AddEvent("retry.attempt", "n", "1")
	clk.advance(10 * time.Millisecond)
	grand.End()
	root.End()

	snap := tr.Snapshot()
	if snap.Kept != 1 || len(snap.Recent) != 1 {
		t.Fatalf("snapshot kept=%d recent=%d, want 1/1", snap.Kept, len(snap.Recent))
	}
	trace := snap.Recent[0]
	if len(trace.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(trace.Spans), trace.Spans)
	}
	byName := map[string]SpanData{}
	for _, s := range trace.Spans {
		if s.TraceID != trace.TraceID {
			t.Errorf("span %s trace id %s, want %s", s.Name, s.TraceID, trace.TraceID)
		}
		byName[s.Name] = s
	}
	if byName["cache.lookup"].ParentID != byName["serve"].SpanID {
		t.Errorf("cache.lookup parent = %s, want serve's span id %s",
			byName["cache.lookup"].ParentID, byName["serve"].SpanID)
	}
	if byName["model.call"].ParentID != byName["cache.lookup"].SpanID {
		t.Errorf("model.call parent = %s, want cache.lookup's span id %s",
			byName["model.call"].ParentID, byName["cache.lookup"].SpanID)
	}
	if byName["serve"].DurationMs != 15 {
		t.Errorf("root duration = %vms, want 15", byName["serve"].DurationMs)
	}
	if byName["cache.lookup"].Status != "hit" {
		t.Errorf("cache.lookup status = %q, want hit", byName["cache.lookup"].Status)
	}
	if ev := byName["model.call"].Events; len(ev) != 1 || ev[0].Name != "retry.attempt" {
		t.Errorf("model.call events = %+v, want one retry.attempt", ev)
	}
}

func TestStartSpanWithoutTracerIsNoOp(t *testing.T) {
	ctx := context.Background()
	octx, span := StartSpan(ctx, "orphan")
	if span != nil {
		t.Fatal("StartSpan without a tracer returned a non-nil span")
	}
	if octx != ctx {
		t.Fatal("StartSpan without a tracer changed the context")
	}
	// All nil-span methods must be safe.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.SetAttrBool("b", true)
	span.AddEvent("e")
	span.SetError(nil)
	span.SetStatus("s")
	span.End()
	if span.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	AddEvent(ctx, "e") // package-level helper, same guarantee
}

func TestRemoteParentContinuation(t *testing.T) {
	tr := newTestTracer(TraceConfig{})
	remote := SpanContext{
		TraceID: TraceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		SpanID:  SpanID{8, 7, 6, 5, 4, 3, 2, 1},
		Sampled: true,
	}
	ctx := ContextWithRemote(context.Background(), remote)
	_, span := tr.StartSpan(ctx, "downstream")
	sc := span.Context()
	if sc.TraceID != remote.TraceID {
		t.Fatalf("continuation trace id %s, want upstream %s", sc.TraceID, remote.TraceID)
	}
	if !sc.Sampled {
		t.Fatal("continuation dropped the upstream sampled flag")
	}
	span.End()
	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("kept %d traces, want 1", len(snap.Recent))
	}
	if got := snap.Recent[0].Spans[0].ParentID; got != remote.SpanID.String() {
		t.Fatalf("downstream root parent = %s, want remote span %s", got, remote.SpanID)
	}

	// An unsampled upstream verdict is honored: no error, not slow, not kept.
	remote.Sampled = false
	ctx = ContextWithRemote(context.Background(), remote)
	_, span = tr.StartSpan(ctx, "downstream2")
	span.End()
	if snap := tr.Snapshot(); snap.Discarded != 1 {
		t.Fatalf("unsampled continuation: discarded=%d, want 1", snap.Discarded)
	}
}

func TestHeadSamplingAndPromotion(t *testing.T) {
	clk := &testClock{t: time.Unix(1700000000, 0)}
	tr := newTestTracer(TraceConfig{SampleEvery: -1, Now: clk.now, SlowThreshold: 100 * time.Millisecond})

	// Head sampling disabled: a clean fast trace is discarded.
	_, s := tr.StartSpan(context.Background(), "fast")
	s.End()
	if snap := tr.Snapshot(); snap.Kept != 0 || snap.Discarded != 1 {
		t.Fatalf("clean fast trace: kept=%d discarded=%d, want 0/1", snap.Kept, snap.Discarded)
	}

	// An errored trace is promoted regardless of sampling.
	_, s = tr.StartSpan(context.Background(), "errored")
	s.SetError(context.DeadlineExceeded)
	s.End()
	snap := tr.Snapshot()
	if snap.Kept != 1 || !snap.Recent[0].Error {
		t.Fatalf("errored trace not promoted: %+v", snap)
	}

	// A slow trace is promoted and lands in the slowest list.
	_, s = tr.StartSpan(context.Background(), "slow")
	clk.advance(150 * time.Millisecond)
	s.End()
	snap = tr.Snapshot()
	if snap.Kept != 2 {
		t.Fatalf("slow trace not promoted: kept=%d", snap.Kept)
	}
	if len(snap.Slowest) == 0 || snap.Slowest[0].Root != "slow" {
		t.Fatalf("slowest list = %+v, want slow first", snap.Slowest)
	}
}

func TestSampleEveryN(t *testing.T) {
	tr := newTestTracer(TraceConfig{SampleEvery: 4})
	kept := 0
	for i := 0; i < 12; i++ {
		_, s := tr.StartSpan(context.Background(), "r")
		s.End()
		if s.Context().Sampled {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("SampleEvery=4 over 12 roots sampled %d, want 3", kept)
	}
	if snap := tr.Snapshot(); snap.Kept != 3 || snap.Discarded != 9 {
		t.Fatalf("store kept=%d discarded=%d, want 3/9", snap.Kept, snap.Discarded)
	}
}

func TestStoreBounds(t *testing.T) {
	tr := newTestTracer(TraceConfig{MaxTraces: 4, MaxSlow: 2, MaxSpansPerTrace: 2})
	for i := 0; i < 10; i++ {
		ctx, root := tr.StartSpan(context.Background(), "root")
		for j := 0; j < 5; j++ {
			_, c := StartSpan(ctx, "child")
			c.End()
		}
		root.End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap.Recent))
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("slow list holds %d, want 2", len(snap.Slowest))
	}
	for _, tr := range snap.Recent {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace buffered %d spans, want cap 2", len(tr.Spans))
		}
		// 5 children + 1 root = 6 ended spans, 2 stored.
		if tr.Dropped != 4 {
			t.Fatalf("trace dropped %d spans, want 4", tr.Dropped)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := newTestTracer(TraceConfig{})
	_, s := tr.StartSpan(context.Background(), "once")
	s.End()
	s.End()
	s.End()
	if snap := tr.Snapshot(); snap.Kept != 1 || len(snap.Recent[0].Spans) != 1 {
		t.Fatalf("repeated End duplicated the trace: %+v", snap)
	}
}

func TestIDGenNonZeroAndUnique(t *testing.T) {
	var g idGen
	g.init(0) // random base path
	seen := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := g.spanID()
		if id.IsZero() {
			t.Fatal("generated an all-zero span id")
		}
		if seen[id] {
			t.Fatalf("duplicate span id %s", id)
		}
		seen[id] = true
	}
	if g.traceID().IsZero() {
		t.Fatal("generated an all-zero trace id")
	}
}
