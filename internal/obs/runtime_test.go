package obs

import (
	"math"
	rtmetrics "runtime/metrics"
	"strings"
	"testing"
)

func scrapeFamilies(t *testing.T, reg *Registry) map[string]Family {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, b.String())
	}
	out := make(map[string]Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func TestRuntimeMetricsCollector(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	fams := scrapeFamilies(t, reg)

	g, ok := fams["pas_runtime_goroutines"]
	if !ok {
		t.Fatal("pas_runtime_goroutines missing from exposition")
	}
	if g.Type != "gauge" {
		t.Errorf("pas_runtime_goroutines type = %q, want gauge", g.Type)
	}
	if len(g.Samples) != 1 || g.Samples[0].Value < 1 {
		t.Errorf("pas_runtime_goroutines samples = %+v, want one sample >= 1", g.Samples)
	}

	h, ok := fams["pas_runtime_heap_bytes"]
	if !ok {
		t.Fatal("pas_runtime_heap_bytes missing")
	}
	if len(h.Samples) != 1 || h.Samples[0].Value <= 0 {
		t.Errorf("pas_runtime_heap_bytes = %+v, want one positive sample", h.Samples)
	}

	for _, name := range []string{"pas_runtime_memory_bytes", "pas_runtime_alloc_bytes_total", "pas_runtime_gc_cycles_total"} {
		if _, ok := fams[name]; !ok {
			t.Errorf("%s missing from exposition", name)
		}
	}

	p, ok := fams["pas_runtime_gc_pause_seconds"]
	if !ok {
		t.Fatal("pas_runtime_gc_pause_seconds missing")
	}
	quantiles := make(map[string]bool)
	for _, s := range p.Samples {
		for _, a := range s.Labels {
			if a.Key == "quantile" {
				quantiles[a.Value] = true
			}
		}
		if s.Value < 0 {
			t.Errorf("gc pause quantile %v negative", s)
		}
	}
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		if !quantiles[q] {
			t.Errorf("missing gc pause quantile %q (have %v)", q, quantiles)
		}
	}
}

func TestRuntimeMetricsSecondScrape(t *testing.T) {
	// Two scrapes must both succeed (the sample slice is reused across
	// collector invocations) and goroutine counts stay sane.
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	first := scrapeFamilies(t, reg)["pas_runtime_goroutines"]
	second := scrapeFamilies(t, reg)["pas_runtime_goroutines"]
	if len(first.Samples) != 1 || len(second.Samples) != 1 {
		t.Fatalf("expected one goroutine sample per scrape, got %d then %d", len(first.Samples), len(second.Samples))
	}
}

func TestHistQuantile(t *testing.T) {
	// Buckets: (-inf,1] (1,2] (2,4] (4,+inf); counts per bucket.
	h := &rtmetrics.Float64Histogram{
		Counts:  []uint64{0, 90, 9, 1},
		Buckets: []float64{math.Inf(-1), 1, 2, 4, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := histQuantile(h, 0.99); got != 4 {
		t.Errorf("p99 = %v, want 4", got)
	}
	// The p100 rank lands in the +Inf bucket; the finite lower bound is
	// reported instead of Inf.
	if got := histQuantile(h, 1.0); got != 4 {
		t.Errorf("p100 = %v, want 4 (finite lower bound of +Inf bucket)", got)
	}
	empty := &rtmetrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
}

func TestBuildInfoGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "passerve")
	fams := scrapeFamilies(t, reg)

	bi, ok := fams["pas_build_info"]
	if !ok {
		t.Fatal("pas_build_info missing from exposition")
	}
	if len(bi.Samples) != 1 {
		t.Fatalf("pas_build_info samples = %d, want 1", len(bi.Samples))
	}
	s := bi.Samples[0]
	if s.Value != 1 {
		t.Errorf("pas_build_info value = %v, want 1", s.Value)
	}
	labels := make(map[string]string)
	for _, a := range s.Labels {
		labels[a.Key] = a.Value
	}
	if labels["service"] != "passerve" {
		t.Errorf("service label = %q, want passerve", labels["service"])
	}
	if !strings.HasPrefix(labels["go_version"], "go") {
		t.Errorf("go_version label = %q, want go* prefix", labels["go_version"])
	}
	if labels["revision"] == "" {
		t.Error("revision label empty; want a commit hash or \"unknown\"")
	}

	up, ok := fams["pas_process_uptime_seconds"]
	if !ok {
		t.Fatal("pas_process_uptime_seconds missing")
	}
	if len(up.Samples) != 1 || up.Samples[0].Value < 0 {
		t.Errorf("pas_process_uptime_seconds = %+v, want one non-negative sample", up.Samples)
	}
}
