package obs

import "net/http"

// ResponseRecorder is the one response-writer wrapper the whole stack
// shares: it captures the status code and byte count for logging,
// metrics, and tracing. WrapResponseWriter returns an existing
// recorder unchanged, so a middleware chain wraps each request exactly
// once and every layer reads the same record — the pre-obs stack
// wrapped twice (logging and metrics each had a private copy) and the
// two could disagree.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

// WrapResponseWriter wraps w, or returns it as-is when it is already a
// recorder from an outer middleware.
func WrapResponseWriter(w http.ResponseWriter) *ResponseRecorder {
	if rr, ok := w.(*ResponseRecorder); ok {
		return rr
	}
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records and forwards the status code.
func (rr *ResponseRecorder) WriteHeader(code int) {
	rr.status = code
	rr.ResponseWriter.WriteHeader(code)
}

// Write forwards the body bytes, recording the implicit 200 commit on
// a first write without an explicit WriteHeader.
func (rr *ResponseRecorder) Write(p []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	n, err := rr.ResponseWriter.Write(p)
	rr.bytes += n
	return n, err
}

// Flush forwards flushing so SSE streaming keeps working through the
// middleware stack.
func (rr *ResponseRecorder) Flush() {
	if f, ok := rr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded status, 0 when nothing was written yet.
func (rr *ResponseRecorder) Status() int { return rr.status }

// StatusOr200 returns the recorded status, reading the
// nothing-written-yet state as the implicit 200 net/http will send.
// It never mutates the recorder.
func (rr *ResponseRecorder) StatusOr200() int {
	if rr.status == 0 {
		return http.StatusOK
	}
	return rr.status
}

// BytesWritten returns the number of body bytes written so far.
func (rr *ResponseRecorder) BytesWritten() int { return rr.bytes }
