package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplarOpenMetricsOutput(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("pas_test_latency_seconds", "test latencies",
		[]float64{0.01, 0.1, 1}, "path").With("/v1/augment")
	h.ObserveExemplar(0.005, "aaaabbbbccccdddd0000111122223333")
	h.ObserveExemplar(0.5, "ffffeeeeddddcccc0000111122223333")
	h.ObserveExemplar(5, "99998888777766660000111122223333") // +Inf slot
	h.Observe(0.02)                                          // no exemplar

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := om.String()

	wants := []string{
		`le="0.01"} 1 # {trace_id="aaaabbbbccccdddd0000111122223333"} 0.005`,
		`le="1"} 3 # {trace_id="ffffeeeeddddcccc0000111122223333"} 0.5`,
		`le="+Inf"} 4 # {trace_id="99998888777766660000111122223333"} 5`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q\n%s", want, out)
		}
	}
	// The 0.1 bucket saw only the exemplar-less Observe(0.02): its
	// cumulative count includes it but no exemplar suffix is attached.
	if !strings.Contains(out, "le=\"0.1\"} 2\n") {
		t.Errorf("expected bare le=\"0.1\" bucket line with count 2\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output must end with # EOF, got tail %q", out[max(0, len(out)-40):])
	}

	// The 0.0.4 exposition must stay exemplar-free: every # starts a
	// HELP/TYPE comment line, never a mid-line exemplar.
	var txt strings.Builder
	if err := reg.WriteText(&txt); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, line := range strings.Split(txt.String(), "\n") {
		if i := strings.IndexByte(line, '#'); i > 0 {
			t.Errorf("WriteText line has mid-line #: %q", line)
		}
	}
	if strings.Contains(txt.String(), "trace_id") {
		t.Errorf("WriteText output leaked exemplars:\n%s", txt.String())
	}
}

func TestParseExpositionTolerantOfExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pas_test_seconds", "test", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(2, "b7ad6b7169203331aaaabbbbccccdddd")
	reg.Counter("pas_test_total", "count").Add(3)

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	fams, err := ParseExposition(strings.NewReader(om.String()))
	if err != nil {
		t.Fatalf("ParseExposition of OpenMetrics output: %v\n%s", err, om.String())
	}
	byName := make(map[string]Family)
	for _, f := range fams {
		byName[f.Name] = f
	}
	hist, ok := byName["pas_test_seconds"]
	if !ok {
		t.Fatalf("pas_test_seconds not parsed; families: %v", fams)
	}
	var count float64 = -1
	for _, s := range hist.Samples {
		if s.Suffix == "_count" {
			count = s.Value
		}
	}
	if count != 2 {
		t.Errorf("parsed _count = %v, want 2", count)
	}
	if c, ok := byName["pas_test_total"]; !ok || len(c.Samples) != 1 || c.Samples[0].Value != 3 {
		t.Errorf("pas_test_total parsed wrong: %+v", byName["pas_test_total"])
	}
}

func TestMetricsHandlerNegotiatesOpenMetrics(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pas_neg_seconds", "test", []float64{1})
	h.ObserveExemplar(0.5, "1234567890abcdef1234567890abcdef")

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(path string, accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/", "")
	if ct != TextContentType {
		t.Errorf("default content type = %q, want %q", ct, TextContentType)
	}
	if strings.Contains(body, "trace_id") {
		t.Errorf("default scrape leaked exemplars:\n%s", body)
	}

	body, ct = get("/?exemplars=1", "")
	if ct != OpenMetricsContentType {
		t.Errorf("?exemplars=1 content type = %q, want %q", ct, OpenMetricsContentType)
	}
	if !strings.Contains(body, `trace_id="1234567890abcdef1234567890abcdef"`) {
		t.Errorf("?exemplars=1 scrape missing exemplar:\n%s", body)
	}

	body, ct = get("/", "application/openmetrics-text; version=1.0.0")
	if ct != OpenMetricsContentType {
		t.Errorf("Accept-negotiated content type = %q, want %q", ct, OpenMetricsContentType)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("Accept-negotiated body missing # EOF terminator")
	}
}
