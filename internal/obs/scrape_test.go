package obs

import (
	"strings"
	"testing"
)

// registryText renders a registry the same way /metricsz does.
func registryText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParseRoundTrip: ParseExposition consumes exactly what WriteText
// produces — counters, labeled gauges, histogram series and escaped
// label values all survive the trip.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pas_requests_total", "Total requests.").Add(41)
	r.GaugeVec("pas_member_state", "Member state.", "replica").With(`http://a:1`).Set(2)
	r.GaugeVec("pas_member_state", "Member state.", "replica").With("weird\"quote\nnewline\\slash").Set(1)
	h := r.Histogram("pas_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	fams, err := ParseExposition(strings.NewReader(registryText(t, r)))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	c, ok := byName["pas_requests_total"]
	if !ok || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 41 {
		t.Fatalf("counter family wrong: %+v", c)
	}
	if c.Help != "Total requests." {
		t.Fatalf("help = %q", c.Help)
	}

	g := byName["pas_member_state"]
	if g.Type != "gauge" || len(g.Samples) != 2 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	found := false
	for _, s := range g.Samples {
		if len(s.Labels) == 1 && s.Labels[0].Value == "weird\"quote\nnewline\\slash" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %+v", g.Samples)
	}

	hist := byName["pas_latency_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram type = %q", hist.Type)
	}
	// 2 finite buckets + +Inf bucket + sum + count = 5 series.
	if len(hist.Samples) != 5 {
		t.Fatalf("histogram series = %d, want 5: %+v", len(hist.Samples), hist.Samples)
	}
	for _, s := range hist.Samples {
		if s.Suffix == "_count" && s.Value != 3 {
			t.Fatalf("histogram count = %v, want 3", s.Value)
		}
		if s.Name != "pas_latency_seconds" {
			t.Fatalf("histogram sample name %q not folded to family", s.Name)
		}
	}
}

// TestParseMalformed: broken sample lines fail with the line number
// rather than silently dropping data.
func TestParseMalformed(t *testing.T) {
	cases := []string{
		"pas_x{le=\"0.1\" 3",      // unterminated label block
		"pas_x not-a-number",      // bad value
		"pas_x{oops} 1",           // label without '='
		"pas_x{k=\"v} 1",          // unterminated quote
		"{} 1",                    // no metric name
		"# TYPE pas_x\npas_x oop", // TYPE missing the type, then bad value
	}
	for _, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseExposition(%q) succeeded, want error", in)
		}
	}
	// Empty input and bare comments are fine.
	if fams, err := ParseExposition(strings.NewReader("\n# just a comment\n")); err != nil || len(fams) != 0 {
		t.Fatalf("comment-only exposition: %v %v", fams, err)
	}
}

// TestMergeExpositions: two members' scrapes fold into one exposition
// where every series carries its instance label and both values are
// present — and the merged output renders and re-parses cleanly.
func TestMergeExpositions(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("pas_serving_cache_hits_total", "Cache hits.").Add(10)
	r2.Counter("pas_serving_cache_hits_total", "Cache hits.").Add(4)
	r2.Counter("pas_only_on_two_total", "Loner.").Add(1)

	parse := func(r *Registry) []Family {
		t.Helper()
		fams, err := ParseExposition(strings.NewReader(registryText(t, r)))
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	merged := MergeExpositions([]ScrapedExposition{
		{Instance: "http://a:1", Families: parse(r1)},
		{Instance: "http://b:1", Families: parse(r2)},
	})

	byName := map[string]Family{}
	for _, f := range merged {
		byName[f.Name] = f
	}
	hits := byName["pas_serving_cache_hits_total"]
	if len(hits.Samples) != 2 {
		t.Fatalf("merged hits series = %d, want 2", len(hits.Samples))
	}
	got := map[string]float64{}
	for _, s := range hits.Samples {
		if len(s.Labels) == 0 || s.Labels[0].Key != "instance" {
			t.Fatalf("sample missing leading instance label: %+v", s)
		}
		got[s.Labels[0].Value] = s.Value
	}
	if got["http://a:1"] != 10 || got["http://b:1"] != 4 {
		t.Fatalf("merged values = %v", got)
	}
	if len(byName["pas_only_on_two_total"].Samples) != 1 {
		t.Fatal("family present on one member only was lost")
	}

	var b strings.Builder
	if err := WriteFamilies(&b, merged); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `pas_serving_cache_hits_total{instance="http://a:1"} 10`) {
		t.Fatalf("rendered rollup missing instance series:\n%s", out)
	}
	reparsed, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("merged output does not re-parse: %v\n%s", err, out)
	}
	if len(reparsed) != len(merged) {
		t.Fatalf("re-parse family count %d != %d", len(reparsed), len(merged))
	}
}
