package obs

import (
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the content type WriteOpenMetrics serves
// under — the OpenMetrics 1.0 text format, which is where exemplars
// live (the 0.0.4 format has no syntax for them).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteText renders every family in Prometheus text exposition format:
// sorted by metric name, HELP and TYPE lines first, samples sorted by
// label signature, histograms as cumulative _bucket/_sum/_count lines.
// The output is deterministic for a given registry state.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the same exposition in OpenMetrics flavor:
// histogram bucket lines carry ` # {trace_id="..."} value` exemplar
// suffixes where one was recorded (via Histogram.ObserveExemplar), and
// the output ends with the mandatory `# EOF` terminator. Everything
// else matches WriteText, so the two differ only where exemplars
// require it.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	var b strings.Builder
	for _, f := range r.gather() {
		if len(f.samples) == 0 && len(f.histograms) == 0 {
			continue
		}
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')

		samples := append([]emittedSample(nil), f.samples...)
		sort.Slice(samples, func(i, j int) bool {
			return labelSignature(samples[i].labels) < labelSignature(samples[j].labels)
		})
		for _, s := range samples {
			b.WriteString(f.name)
			writeLabels(&b, s.labels, false, 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}

		hists := append([]histogramSample(nil), f.histograms...)
		sort.Slice(hists, func(i, j int) bool {
			return labelSignature(hists[i].labels) < labelSignature(hists[j].labels)
		})
		for _, h := range hists {
			// Bucket counts are cumulative; the implicit +Inf bucket
			// equals _count. Exemplar slots are per-bucket
			// (non-cumulative), so slot i annotates bucket i's line.
			for i, bound := range h.bounds {
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, h.labels, true, bound)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(h.buckets[i], 10))
				if openMetrics {
					writeExemplar(&b, h.exemplars, i)
				}
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(&b, h.labels, true, infBound)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(h.count, 10))
			if openMetrics {
				writeExemplar(&b, h.exemplars, len(h.bounds))
			}
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(&b, h.labels, false, 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(h.sum))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(&b, h.labels, false, 0)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(h.count, 10))
			b.WriteByte('\n')
		}
	}
	if openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplar appends an OpenMetrics exemplar suffix
// (` # {trace_id="..."} value`) for slot i, if one was recorded.
func writeExemplar(b *strings.Builder, exemplars []exemplar, i int) {
	if i >= len(exemplars) || exemplars[i].traceID == "" {
		return
	}
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabel(exemplars[i].traceID))
	b.WriteString(`"} `)
	b.WriteString(formatValue(exemplars[i].value))
}

// infBound marks the implicit +Inf bucket for writeLabels.
const infBound = -1

// writeLabels renders the {k="v",...} block, appending the le bucket
// bound when withLE is set; no labels and no le renders nothing.
func writeLabels(b *strings.Builder, labels []Attr, withLE bool, bound float64) {
	if len(labels) == 0 && !withLE {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if withLE {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		if bound == infBound {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatValue(bound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func labelSignature(labels []Attr) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in text exposition format; mount at
// GET /metricsz.
func (r *Registry) Handler() http.Handler {
	return r.HandlerWithJSON(nil)
}

// HandlerWithJSON serves text exposition by default and delegates to
// jsonFallback when the scrape asks for ?format=json — the shape the
// pre-obs /metricsz served, kept for existing dashboards. A scrape
// asking for OpenMetrics (Accept: application/openmetrics-text, or
// ?exemplars=1 for humans) gets WriteOpenMetrics, which is the only
// flavor that carries trace-ID exemplars.
func (r *Registry) HandlerWithJSON(jsonFallback http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if jsonFallback != nil && req.URL.Query().Get("format") == "json" {
			jsonFallback.ServeHTTP(w, req)
			return
		}
		if req.URL.Query().Get("exemplars") == "1" ||
			strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			if err := r.WriteOpenMetrics(w); err != nil {
				log.Printf("obs: writing metrics: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		if err := r.WriteText(w); err != nil {
			log.Printf("obs: writing metrics: %v", err)
		}
	})
}
