package obs

import (
	"context"
	"errors"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux bundles the debug surface a PAS service exposes on its
// -debug-addr listener, deliberately separate from the serving port:
//
//	/debug/pprof/*  net/http/pprof profiling (CPU, heap, goroutines, ...)
//	/debug/traces   the tracer's recent and slowest traces as JSON
//	/metricsz       the registry in Prometheus text exposition
//	                (?format=json serves jsonMetrics when non-nil)
//
// Nil reg or tracer simply omit their endpoints.
func DebugMux(reg *Registry, tracer *Tracer, jsonMetrics http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tracer != nil {
		mux.Handle("/debug/traces", tracer.Handler())
	}
	if reg != nil {
		mux.Handle("/metricsz", reg.HandlerWithJSON(jsonMetrics))
	}
	return mux
}

// ServeDebug runs h on addr until ctx is cancelled, then shuts the
// listener down (bounded at 2s — profiling clients are not worth a
// long drain). A clean shutdown returns nil. The debug listener has no
// request timeouts: a 30s CPU profile is a legitimately long request.
func ServeDebug(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
