package obs

import (
	"runtime"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"time"
)

// This file is the process-level half of the metrics surface: what the
// Go runtime itself can tell an operator about a PAS daemon. Two
// registration points, both scrape-time collectors so the hot path pays
// nothing:
//
//   - RegisterBuildInfo: one pas_build_info gauge carrying the build's
//     identity (go version, VCS revision) plus a process-uptime gauge,
//     so a fleet scrape answers "which build is each replica running
//     and how long has it been up" — the first two questions of any
//     rollout or perf-regression investigation.
//
//   - RegisterRuntimeMetrics: goroutine count, heap bytes, cumulative
//     allocation, GC cycles, and GC pause quantiles, read from
//     runtime/metrics at scrape time. These are the denominators the
//     benchmark trajectory (internal/benchtrack) needs when a latency
//     regression shows up: was it allocation pressure, a goroutine
//     leak, or GC pauses?

// Runtime metric names sampled by RegisterRuntimeMetrics. Unsupported
// names (older runtimes) are skipped, never served as zeros.
const (
	metricGoroutines = "/sched/goroutines:goroutines"
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricTotalBytes = "/memory/classes/total:bytes"
	metricAllocBytes = "/gc/heap/allocs:bytes"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeMetrics exposes runtime telemetry on reg, read from
// runtime/metrics at scrape time:
//
//	pas_runtime_goroutines          current goroutine count
//	pas_runtime_heap_bytes          live heap object bytes
//	pas_runtime_memory_bytes        total bytes mapped by the runtime
//	pas_runtime_alloc_bytes_total   cumulative heap allocation
//	pas_runtime_gc_cycles_total     completed GC cycles
//	pas_runtime_gc_pause_seconds    GC stop-the-world pause quantiles
//	                                (0.5/0.9/0.99, from the runtime's
//	                                full pause histogram)
func RegisterRuntimeMetrics(reg *Registry) {
	samples := []rtmetrics.Sample{
		{Name: metricGoroutines},
		{Name: metricHeapBytes},
		{Name: metricTotalBytes},
		{Name: metricAllocBytes},
		{Name: metricGCCycles},
		{Name: metricGCPauses},
	}
	reg.RegisterCollector(func(e *Emitter) {
		rtmetrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case metricGoroutines:
				if v, ok := sampleValue(s); ok {
					e.Gauge("pas_runtime_goroutines", "Goroutines currently live.", v)
				}
			case metricHeapBytes:
				if v, ok := sampleValue(s); ok {
					e.Gauge("pas_runtime_heap_bytes", "Bytes of live heap objects.", v)
				}
			case metricTotalBytes:
				if v, ok := sampleValue(s); ok {
					e.Gauge("pas_runtime_memory_bytes", "Total bytes of memory mapped by the Go runtime.", v)
				}
			case metricAllocBytes:
				if v, ok := sampleValue(s); ok {
					e.Counter("pas_runtime_alloc_bytes_total", "Cumulative bytes allocated on the heap.", v)
				}
			case metricGCCycles:
				if v, ok := sampleValue(s); ok {
					e.Counter("pas_runtime_gc_cycles_total", "Completed GC cycles.", v)
				}
			case metricGCPauses:
				if s.Value.Kind() != rtmetrics.KindFloat64Histogram {
					continue
				}
				h := s.Value.Float64Histogram()
				for _, q := range []struct {
					q     float64
					label string
				}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
					e.Gauge("pas_runtime_gc_pause_seconds", "GC stop-the-world pause quantiles in seconds.",
						histQuantile(h, q.q), "quantile", q.label)
				}
			}
		}
	})
}

// sampleValue converts a scalar runtime/metrics sample to float64; ok
// is false for unsupported (KindBad) or histogram-shaped samples.
func sampleValue(s rtmetrics.Sample) (float64, bool) {
	switch s.Value.Kind() {
	case rtmetrics.KindUint64:
		return float64(s.Value.Uint64()), true
	case rtmetrics.KindFloat64:
		return s.Value.Float64(), true
	default:
		return 0, false
	}
}

// histQuantile estimates quantile q of a runtime Float64Histogram: the
// upper boundary of the bucket where the cumulative count crosses
// q*total (nearest-rank on bucketed data — exact enough for pause
// monitoring). An empty histogram reports 0; an infinite upper bound
// falls back to the bucket's finite lower bound.
func histQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i] (lower) to Buckets[i+1] (upper).
			upper := h.Buckets[i+1]
			if isInf(upper) {
				return h.Buckets[i]
			}
			return upper
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

func isInf(f float64) bool { return f > 1.7e308 || f < -1.7e308 }

// RegisterBuildInfo exposes the build's identity and the process
// uptime on reg:
//
//	pas_build_info{service,go_version,revision} 1
//	pas_process_uptime_seconds
//
// The revision comes from the VCS stamp in runtime/debug.ReadBuildInfo
// (the vcs.revision setting, shortened to 12 hex chars, with a -dirty
// suffix for modified trees); builds without a stamp — go test binaries,
// go run — report "unknown". Call once at startup; the uptime clock
// starts at the call.
func RegisterBuildInfo(reg *Registry, service string) {
	start := time.Now()
	goVersion := runtime.Version()
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			revision = rev
		}
	}
	reg.RegisterCollector(func(e *Emitter) {
		e.Gauge("pas_build_info", "Build identity; the value is always 1, the labels carry the information.",
			1, "service", service, "go_version", goVersion, "revision", revision)
		e.Gauge("pas_process_uptime_seconds", "Seconds since this process registered its metrics.",
			time.Since(start).Seconds())
	})
}
