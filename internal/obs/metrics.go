package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the process-wide metrics registry: registered instruments
// (counters, gauges, histograms) updated on the hot path, plus
// scrape-time collectors for subsystems that already keep their own
// counters (the serving core, breakers, caches). One Registry feeds
// one /metricsz. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	instr      map[string]*instrument
	names      []string
	collectors []Collector
}

// Collector emits scrape-time samples into e; registered with
// RegisterCollector. It runs under the registry's scrape, so it must
// not block on slow work.
type Collector func(e *Emitter)

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{instr: make(map[string]*instrument)}
}

// instrument is one registered metric family and its children (one per
// label-value combination; the empty combination for unlabeled
// instruments).
type instrument struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	keys     []string
}

type child struct {
	labelValues []string

	// counter/gauge value: float64 bits, atomically updated.
	bits atomic.Uint64

	// histogram state, guarded by mu. exemplars holds the most recent
	// exemplar per bucket (len(bounds)+1, the last slot for +Inf) and
	// stays nil until the first ObserveExemplar.
	mu        sync.Mutex
	buckets   []int64
	sum       float64
	count     int64
	exemplars []exemplar
}

// exemplar links one observed value to the trace that produced it, in
// the OpenMetrics sense: the last sampled observation landing in a
// bucket, exposed so a slow p99 bucket resolves to a span in
// /debug/traces.
type exemplar struct {
	traceID string
	value   float64
}

func (r *Registry) register(name, help, typ string, bounds []float64, labels ...string) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instr[name]; ok {
		if in.typ != typ || len(in.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), in.typ, len(in.labels)))
		}
		return in
	}
	in := &instrument{name: name, help: help, typ: typ, labels: labels, bounds: bounds,
		children: make(map[string]*child)}
	r.instr[name] = in
	r.names = append(r.names, name)
	return in
}

func (in *instrument) child(labelValues ...string) *child {
	if len(labelValues) != len(in.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", in.name, len(in.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	in.mu.Lock()
	defer in.mu.Unlock()
	c, ok := in.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if in.typ == "histogram" {
			c.buckets = make([]int64, len(in.bounds))
		}
		in.children[key] = c
		in.keys = append(in.keys, key)
	}
	return c
}

// Counter is a monotonically increasing count.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds n (must be >= 0 to keep the counter monotone).
func (c Counter) Add(n float64) {
	for {
		old := c.c.bits.Load()
		v := math.Float64frombits(old) + n
		if c.c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current count.
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram is a bounded-bucket distribution (cumulative buckets plus
// sum and count, the Prometheus shape).
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	h.c.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.c.buckets[i]++
		}
	}
	h.c.sum += v
	h.c.count++
	h.c.mu.Unlock()
}

// ObserveExemplar records one value and attaches traceID as the
// exemplar for the (non-cumulative) bucket the value falls in,
// replacing that bucket's previous exemplar. An empty traceID degrades
// to a plain Observe. Exemplars appear only in the OpenMetrics
// exposition (WriteOpenMetrics); WriteText stays 0.0.4-clean.
func (h Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID == "" {
		h.Observe(v)
		return
	}
	h.c.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.c.buckets[i]++
		}
	}
	h.c.sum += v
	h.c.count++
	if h.c.exemplars == nil {
		h.c.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	slot := len(h.bounds) // +Inf
	for i, b := range h.bounds {
		if v <= b {
			slot = i
			break
		}
	}
	h.c.exemplars[slot] = exemplar{traceID: traceID, value: v}
	h.c.mu.Unlock()
}

// DefaultLatencyBuckets are exposition bounds for request latencies in
// seconds, 1ms to 10s.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, "counter", nil).child()}
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, "gauge", nil).child()}
}

// Histogram registers (or returns the existing) unlabeled histogram
// over the given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	in := r.register(name, help, "histogram", bounds)
	return Histogram{in.child(), in.bounds}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ in *instrument }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, "counter", nil, labels...)}
}

// With returns the counter for one label-value combination.
func (v CounterVec) With(labelValues ...string) Counter {
	return Counter{v.in.child(labelValues...)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ in *instrument }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, "gauge", nil, labels...)}
}

// With returns the gauge for one label-value combination.
func (v GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{v.in.child(labelValues...)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ in *instrument }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, "histogram", bounds, labels...)}
}

// With returns the histogram for one label-value combination.
func (v HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{v.in.child(labelValues...), v.in.bounds}
}

// RegisterCollector adds a scrape-time sample source; it runs on every
// scrape after the registered instruments are gathered.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Emitter receives a collector's scrape-time samples. Families emitted
// here merge with registered instruments in the exposition output.
type Emitter struct {
	fams  map[string]*emittedFamily
	names []string
}

type emittedFamily struct {
	name, help, typ string
	samples         []emittedSample
	histograms      []histogramSample
}

type emittedSample struct {
	labels []Attr
	value  float64
}

func (e *Emitter) emit(name, help, typ string, value float64, labels []string) {
	f, ok := e.fams[name]
	if !ok {
		f = &emittedFamily{name: name, help: help, typ: typ}
		e.fams[name] = f
		e.names = append(e.names, name)
	}
	s := emittedSample{value: value}
	for i := 0; i+1 < len(labels); i += 2 {
		s.labels = append(s.labels, Attr{Key: labels[i], Value: labels[i+1]})
	}
	f.samples = append(f.samples, s)
}

// Counter emits one counter sample; labels lists key/value pairs.
func (e *Emitter) Counter(name, help string, value float64, labels ...string) {
	e.emit(name, help, "counter", value, labels)
}

// Gauge emits one gauge sample; labels lists key/value pairs.
func (e *Emitter) Gauge(name, help string, value float64, labels ...string) {
	e.emit(name, help, "gauge", value, labels)
}

// gather snapshots every family — registered instruments first, then
// collectors — sorted by name for a stable exposition.
func (r *Registry) gather() []*emittedFamily {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	instr := make([]*instrument, 0, len(names))
	for _, n := range names {
		instr = append(instr, r.instr[n])
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	e := &Emitter{fams: make(map[string]*emittedFamily)}
	for _, in := range instr {
		e.gatherInstrument(in)
	}
	for _, c := range collectors {
		c(e)
	}
	fams := make([]*emittedFamily, 0, len(e.names))
	for _, n := range e.names {
		fams = append(fams, e.fams[n])
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (e *Emitter) gatherInstrument(in *instrument) {
	in.mu.Lock()
	keys := append([]string(nil), in.keys...)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, in.children[k])
	}
	in.mu.Unlock()

	f, ok := e.fams[in.name]
	if !ok {
		f = &emittedFamily{name: in.name, help: in.help, typ: in.typ}
		e.fams[in.name] = f
		e.names = append(e.names, in.name)
	}
	for _, c := range children {
		labels := make([]Attr, len(in.labels))
		for i, l := range in.labels {
			labels[i] = Attr{Key: l, Value: c.labelValues[i]}
		}
		switch in.typ {
		case "histogram":
			c.mu.Lock()
			hs := histogramSample{
				labels:  labels,
				bounds:  in.bounds,
				buckets: append([]int64(nil), c.buckets...),
				sum:     c.sum,
				count:   c.count,
			}
			if c.exemplars != nil {
				hs.exemplars = append([]exemplar(nil), c.exemplars...)
			}
			c.mu.Unlock()
			f.histograms = append(f.histograms, hs)
		default:
			f.samples = append(f.samples, emittedSample{labels: labels,
				value: math.Float64frombits(c.bits.Load())})
		}
	}
}

type histogramSample struct {
	labels  []Attr
	bounds  []float64
	buckets []int64
	sum     float64
	count   int64
	// exemplars is nil or len(bounds)+1 (last slot +Inf); zero-value
	// entries mean "no exemplar for this bucket".
	exemplars []exemplar
}
