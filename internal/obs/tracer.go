package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// TraceConfig sizes a Tracer. The zero value of any field selects its
// default.
type TraceConfig struct {
	// SampleEvery head-samples 1 of every N root traces. 1 (the
	// default) traces everything; negative disables head sampling so
	// only errored and slow traces are kept. Errored and slow traces
	// are always kept regardless of this verdict.
	SampleEvery int
	// SlowThreshold promotes any trace whose root span runs at least
	// this long into the store, sampled or not — the slow tail is
	// exactly what /debug/traces exists to explain. Default 250ms.
	SlowThreshold time.Duration
	// MaxTraces bounds the recent-traces ring. Default 128.
	MaxTraces int
	// MaxSlow bounds the slowest-traces list. Default 32.
	MaxSlow int
	// MaxSpansPerTrace caps spans buffered per trace; past it spans
	// are counted as dropped instead of stored. Default 256.
	MaxSpansPerTrace int
	// Now injects the clock; tests pin it. Default time.Now.
	Now func() time.Time
	// IDSeed, when non-zero, derives trace/span ids from a
	// deterministic counter instead of a random base — the test hook
	// for asserting exact ids. Production leaves it 0.
	IDSeed uint64
}

func (cfg TraceConfig) withDefaults() TraceConfig {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 128
	}
	if cfg.MaxSlow <= 0 {
		cfg.MaxSlow = 32
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Tracer creates spans and owns the bounded store of finished traces.
// Safe for concurrent use; one per process is the intended shape.
type Tracer struct {
	cfg   TraceConfig
	ids   idGen
	seq   atomic.Uint64 // root counter for head sampling
	store *traceStore
}

// NewTracer builds a tracer.
func NewTracer(cfg TraceConfig) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg, store: newTraceStore(cfg.MaxTraces, cfg.MaxSlow)}
	t.ids.init(cfg.IDSeed)
	return t
}

func (t *Tracer) now() time.Time { return t.cfg.Now() }

// headSample decides admission for a new root trace.
func (t *Tracer) headSample() bool {
	if t.cfg.SampleEvery < 0 {
		return false
	}
	if t.cfg.SampleEvery == 1 {
		return true
	}
	return t.seq.Add(1)%uint64(t.cfg.SampleEvery) == 1
}

// StartSpan starts a span under ctx: a child of ctx's active span when
// one exists, else a local root continuing a remote parent recorded by
// ContextWithRemote, else a brand-new root trace. The returned context
// carries the span; pass it down so children nest and Inject
// propagates the right parent.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	now := t.cfg.Now()
	s := &Span{tracer: t, name: name, start: now}
	if parent := SpanFromContext(ctx); parent != nil && parent.rec != nil {
		s.rec = parent.rec
		s.sc.TraceID = parent.sc.TraceID
		s.sc.Sampled = parent.sc.Sampled
		s.parent = parent.sc.SpanID
	} else if remote, ok := remoteFromContext(ctx); ok {
		// Continue the distributed trace: same trace id, remote span as
		// parent. The upstream sampling verdict is honored (OR-ing in
		// our own head sample would re-sample on every hop).
		s.root = true
		s.rec = newTraceRec(remote.TraceID, now, t.cfg.MaxSpansPerTrace)
		s.sc.TraceID = remote.TraceID
		s.sc.Sampled = remote.Sampled
		s.parent = remote.SpanID
		s.rec.head = remote.Sampled
	} else {
		s.root = true
		tid := t.ids.traceID()
		s.rec = newTraceRec(tid, now, t.cfg.MaxSpansPerTrace)
		s.sc.TraceID = tid
		s.sc.Sampled = t.headSample()
		s.rec.head = s.sc.Sampled
	}
	s.sc.SpanID = t.ids.spanID()
	return context.WithValue(ctx, spanCtxKey, s), s
}

// submit applies the keep policy when a root span ends: head-sampled,
// errored, or slow traces land in the store; the rest are discarded
// (counted, so the sampling rate is observable).
func (t *Tracer) submit(rec *traceRec) {
	rec.mu.Lock()
	keep := rec.head || rec.errored || rec.rootDur >= t.cfg.SlowThreshold
	rec.mu.Unlock()
	if !keep {
		t.store.discarded.Add(1)
		return
	}
	t.store.add(rec)
}

// idGen derives trace and span ids from a random (or seeded) base and
// an atomic counter, mixed through SplitMix64 — unique, cheap, and
// lock-free, with no clock-seeded rand source anywhere.
type idGen struct {
	base uint64
	ctr  atomic.Uint64
}

func (g *idGen) init(seed uint64) {
	if seed != 0 {
		g.base = seed
		return
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy pool is broken; a
		// fixed base keeps ids unique within the process (the counter
		// still advances), which is all tracing needs to limp along.
		g.base = 0x9e3779b97f4a7c15
		return
	}
	g.base = binary.LittleEndian.Uint64(b[:])
}

func (g *idGen) next() uint64 {
	// SplitMix64: a bijective mix of base+counter, so ids never
	// collide within a process and look uniformly random.
	z := g.base + g.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *idGen) traceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], g.next())
	binary.BigEndian.PutUint64(id[8:], g.next())
	if id.IsZero() {
		id[15] = 1 // the all-zero id is invalid per W3C
	}
	return id
}

func (g *idGen) spanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], g.next())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// traceRec buffers the spans of one in-flight trace. All spans are
// buffered regardless of the head-sampling verdict so an error or a
// slow root can still promote the whole trace at the end.
type traceRec struct {
	mu       sync.Mutex
	traceID  TraceID
	start    time.Time
	spans    []SpanData
	dropped  int
	errored  bool
	head     bool
	rootName string
	rootDur  time.Duration
	maxSpans int
}

func newTraceRec(id TraceID, start time.Time, maxSpans int) *traceRec {
	return &traceRec{traceID: id, start: start, maxSpans: maxSpans}
}

func (r *traceRec) addSpan(d SpanData) {
	r.mu.Lock()
	if len(r.spans) < r.maxSpans {
		r.spans = append(r.spans, d)
	} else {
		r.dropped++
	}
	if d.Error {
		r.errored = true
	}
	r.mu.Unlock()
}

func (r *traceRec) noteError() {
	r.mu.Lock()
	r.errored = true
	r.mu.Unlock()
}

func (r *traceRec) finishRoot(d SpanData) {
	r.mu.Lock()
	r.rootName = d.Name
	r.rootDur = time.Duration(d.DurationMs * float64(time.Millisecond))
	r.mu.Unlock()
}
