package facet

import "strings"

// Trap is one entry in the shared logic-trap knowledge bank. A strong
// model (or a judge, which in the paper is GPT-4) knows both the trap's
// giveaway phrasing and the right/wrong answers; a response that states
// the wrong claim is detectably incorrect to the judge.
//
// Case study 1 of the paper ("10 birds on a tree, one is shot — how many
// on the ground?") is the first entry.
type Trap struct {
	// Name identifies the trap family.
	Name string
	// Cue is the phrase in a prompt that marks this trap.
	Cue string
	// WrongClaim is the statement a model emits when it falls in.
	WrongClaim string
	// RightClaim is the statement a careful model emits instead.
	RightClaim string
}

var trapBank = []Trap{
	{
		Name:       "shot-birds",
		Cue:        "birds on a tree and one is shot",
		WrongClaim: "nine birds remain on the tree",
		RightClaim: "only the one shot bird is on the ground, since the rest fly away",
	},
	{
		Name:       "widow-sister",
		Cue:        "marry his widow's sister",
		WrongClaim: "yes, the man may marry his widow's sister",
		RightClaim: "a man with a widow is dead, so he cannot marry anyone",
	},
	{
		Name:       "surgeon-parent",
		Cue:        "the surgeon says i cannot operate",
		WrongClaim: "the surgeon must be lying about the relationship",
		RightClaim: "the surgeon is the boy's mother",
	},
	{
		Name:       "heavier-kilo",
		Cue:        "heavier a kilogram of steel or a kilogram of feathers",
		WrongClaim: "the steel is heavier than the feathers",
		RightClaim: "they weigh the same, one kilogram each",
	},
	{
		Name:       "months-28-days",
		Cue:        "months have 28 days",
		WrongClaim: "only february has 28 days",
		RightClaim: "all twelve months have at least 28 days",
	},
	{
		Name:       "race-overtake-second",
		Cue:        "overtake the runner in second place",
		WrongClaim: "you would be in first place",
		RightClaim: "you take their spot and are now in second place",
	},
	{
		Name:       "rooster-egg",
		Cue:        "a rooster lays an egg on the roof",
		WrongClaim: "the egg rolls down the side the wind blows",
		RightClaim: "roosters do not lay eggs, so there is no egg to roll",
	},
	{
		Name:       "hole-dirt",
		Cue:        "how much dirt is in a hole",
		WrongClaim: "the hole holds about a cubic meter of dirt",
		RightClaim: "a hole is empty, so it contains no dirt at all",
	},
	{
		Name:       "doctor-brother",
		Cue:        "the doctor has a brother but the brother has no brother",
		WrongClaim: "the situation is impossible as described",
		RightClaim: "the doctor is the brother's sister",
	},
	{
		Name:       "match-first",
		Cue:        "a lamp a stove and a candle and only one match",
		WrongClaim: "light the lamp first to see the room",
		RightClaim: "light the match first, or nothing else can be lit",
	},
}

// Traps returns the shared trap bank. Callers must not modify it.
func Traps() []Trap { return trapBank }

// TrapByName looks a trap up by name.
func TrapByName(name string) (Trap, bool) {
	for _, tr := range trapBank {
		if tr.Name == name {
			return tr, true
		}
	}
	return Trap{}, false
}

// FindTrap reports the trap whose cue appears in text, if any. Matching is
// case-insensitive on normalised text.
func FindTrap(text string) (Trap, bool) {
	folded := strings.ToLower(text)
	for _, tr := range trapBank {
		if strings.Contains(folded, tr.Cue) {
			return tr, true
		}
	}
	return Trap{}, false
}

// ClaimsWrong reports whether the response text states the trap's wrong
// claim.
func (t Trap) ClaimsWrong(response string) bool {
	return strings.Contains(strings.ToLower(response), t.WrongClaim)
}

// ClaimsRight reports whether the response text states the trap's right
// claim.
func (t Trap) ClaimsRight(response string) bool {
	return strings.Contains(strings.ToLower(response), t.RightClaim)
}
