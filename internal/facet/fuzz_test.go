package facet

import "testing"

// FuzzAnalyzePrompt: the shared reading-comprehension routine must be
// total over arbitrary input — no panics, bounded outputs.
func FuzzAnalyzePrompt(f *testing.F) {
	for _, seed := range []string{
		"", "Explain how tides form.",
		"If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?",
		"Briefly, summarize this. Use an organized format with a list.",
		"\x00\xff", "ALL CAPS ????", "a b c d e f g h i j k l m n o p",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a := AnalyzePrompt(s)
		if !a.Category.Valid() {
			t.Fatalf("invalid category %d", int(a.Category))
		}
		if a.Complexity < 0 || a.Complexity > 3 {
			t.Fatalf("complexity out of range: %v", a.Complexity)
		}
		for f2, w := range a.Needs {
			if w < 0 || w > 3 {
				t.Fatalf("need %d out of range: %v", f2, w)
			}
		}
		if a.Trapped && a.Trap.Name == "" {
			t.Fatal("trapped without trap")
		}
		_ = DetectDirectives(s)
		_ = DetectDelivered(s)
		_ = DetectAnswerLeak(s)
	})
}
