package facet

import (
	"strings"

	"repro/internal/textkit"
)

// Analysis is the text-derived understanding of a user prompt: what a
// good answer needs, which facets the user has explicitly constrained,
// which category the prompt most resembles, and whether it hides a trap.
type Analysis struct {
	// Needs weighs how much each facet matters for answering well. It is
	// the category prior sharpened by explicit cues found in the text.
	Needs Weights
	// Constraints marks facets the user explicitly demanded (a directive
	// conflicting with a constrained facet is a defect).
	Constraints Set
	// Category is the best heuristic category guess.
	Category Category
	// CategoryScore is the cue-hit score of the guess (0 when no cue hit).
	CategoryScore int
	// Trap is the detected logic trap, if Trapped.
	Trap    Trap
	Trapped bool
	// Complexity grows with prompt length and number of active needs;
	// the critic treats heavy augmentation of simple prompts as a defect.
	Complexity float64
}

// AnalyzePrompt derives an Analysis from the prompt text alone. It is the
// shared "reading comprehension" routine of every simulated model.
func AnalyzePrompt(text string) Analysis {
	var a Analysis
	a.Category, a.CategoryScore = guessCategory(text)
	a.Needs = NeedPrior(a.Category)

	// Sharpen needs with explicit cues; explicit cues also register as
	// constraints when they bound the answer (conciseness, style,
	// structure are binding; the rest just raise need weight).
	for f := 0; f < Count; f++ {
		hits := textkit.CountLexiconHits(text, needCueLex[Facet(f)])
		if hits == 0 {
			continue
		}
		a.Needs[f] += 0.5 * float64(hits)
		if a.Needs[f] > 2 {
			a.Needs[f] = 2
		}
		switch Facet(f) {
		case Conciseness, Style, Structure:
			a.Constraints = a.Constraints.With(Facet(f))
		}
	}

	if tr, ok := FindTrap(text); ok {
		a.Trap, a.Trapped = tr, true
		a.Needs[TrapAware] += 1.5
		a.Needs[Reasoning] += 0.5
	}

	words := float64(textkit.WordCount(text))
	active := 0
	for _, w := range a.Needs {
		if w > 0.3 {
			active++
		}
	}
	a.Complexity = words/40 + float64(active)/4
	if a.Complexity > 3 {
		a.Complexity = 3
	}
	return a
}

func guessCategory(text string) (Category, int) {
	best, bestScore := QA, 0
	for _, c := range Categories() {
		score := textkit.CountLexiconHits(text, categoryCues[c])
		// Coding/knowledge cues are rarer and more diagnostic than the
		// ubiquitous QA interrogatives; weight them up.
		if c != QA && c != Chitchat {
			score *= 2
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best, bestScore
}

// DetectDirectives reads a complementary prompt and returns the facets it
// demands, by matching the directive lexicon. This is how the simulated
// downstream LLM "obeys" an augmentation: only phrases present in the
// shared lexicon steer it.
func DetectDirectives(aug string) Set {
	var s Set
	for f := 0; f < Count; f++ {
		if countPhraseHits(aug, directiveLex[Facet(f)]) > 0 {
			s = s.With(Facet(f))
		}
	}
	return s
}

// DetectDelivered reads a response and scores how strongly it delivers
// each facet, from the delivery lexicon.
func DetectDelivered(response string) Weights {
	var w Weights
	for f := 0; f < Count; f++ {
		hits := countPhraseHits(response, deliveryLex[Facet(f)])
		w[f] = float64(hits)
		if w[f] > 3 {
			w[f] = 3
		}
	}
	return w
}

// DetectAnswerLeak reports whether an augmentation text directly answers
// the question instead of supplementing it.
func DetectAnswerLeak(aug string) bool {
	return countPhraseHits(aug, answerLeakCues) > 0
}

// ConflictingDirectives returns the demanded facets that conflict with
// the prompt's explicit constraints.
func ConflictingDirectives(a Analysis, directives Set) []Facet {
	var out []Facet
	for _, f := range directives.Facets() {
		for _, g := range a.Constraints.Facets() {
			if f != g && ConflictsWith(f, g) {
				out = append(out, f)
			}
		}
	}
	return out
}

// countPhraseHits counts lexicon phrases occurring in text. Unlike
// textkit.CountLexiconHits it matches substrings on the normalised text,
// because directive/delivery phrases include punctuation and markdown.
func countPhraseHits(text string, phrases []string) int {
	folded := strings.ToLower(text)
	hits := 0
	for _, p := range phrases {
		if p == "" {
			continue
		}
		if strings.Contains(folded, strings.ToLower(p)) {
			hits++
		}
	}
	return hits
}
