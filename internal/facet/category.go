package facet

import "fmt"

// Category is one of the 14 prompt categories of Figure 6. The paper's
// curation pipeline classifies prompts into these so the generation stage
// can pick category-appropriate golden few-shot examples.
type Category int

// The category taxonomy, ordered roughly by prevalence in the paper's
// dataset (Coding and Q&A dominate).
const (
	Coding Category = iota
	QA
	Writing
	Math
	Reason
	Translation
	Summarization
	Roleplay
	Brainstorm
	Knowledge
	Advice
	Analytical
	Extraction
	Chitchat
	numCategories
)

// CategoryCount is the number of categories.
const CategoryCount = int(numCategories)

var categoryNames = [...]string{
	Coding:        "coding",
	QA:            "qa",
	Writing:       "writing",
	Math:          "math",
	Reason:        "reasoning",
	Translation:   "translation",
	Summarization: "summarization",
	Roleplay:      "roleplay",
	Brainstorm:    "brainstorming",
	Knowledge:     "knowledge",
	Advice:        "advice",
	Analytical:    "analysis",
	Extraction:    "extraction",
	Chitchat:      "chitchat",
}

func (c Category) String() string {
	if c < 0 || int(c) >= CategoryCount {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Valid reports whether c is a member of the taxonomy.
func (c Category) Valid() bool { return c >= 0 && int(c) < CategoryCount }

// ParseCategory returns the category with the given name.
func ParseCategory(name string) (Category, error) {
	for i, n := range categoryNames {
		if n == name {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("facet: unknown category %q", name)
}

// Categories returns every category in taxonomy order.
func Categories() []Category {
	out := make([]Category, CategoryCount)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// needPrior gives each category's characteristic distribution over facets:
// what a good answer in that category typically must deliver. Individual
// prompts perturb this prior (see the corpus generator).
var needPrior = map[Category]Weights{
	Coding:        weightsOf(fw{Specificity, 1}, fw{Accuracy, 0.9}, fw{Examples, 0.7}, fw{Structure, 0.6}, fw{Reasoning, 0.4}),
	QA:            weightsOf(fw{Accuracy, 1}, fw{Completeness, 0.8}, fw{Context, 0.6}, fw{Specificity, 0.5}),
	Writing:       weightsOf(fw{Style, 1}, fw{Structure, 0.8}, fw{Context, 0.5}, fw{Specificity, 0.4}),
	Math:          weightsOf(fw{Reasoning, 1}, fw{Accuracy, 0.9}, fw{Planning, 0.6}, fw{Specificity, 0.4}),
	Reason:        weightsOf(fw{Reasoning, 1}, fw{TrapAware, 0.8}, fw{Accuracy, 0.7}, fw{Planning, 0.4}),
	Translation:   weightsOf(fw{Accuracy, 1}, fw{Style, 0.8}, fw{Context, 0.4}, fw{Conciseness, 0.3}),
	Summarization: weightsOf(fw{Conciseness, 1}, fw{Completeness, 0.7}, fw{Structure, 0.6}, fw{Accuracy, 0.5}),
	Roleplay:      weightsOf(fw{Style, 1}, fw{Context, 0.8}, fw{Specificity, 0.4}, fw{Examples, 0.3}),
	Brainstorm:    weightsOf(fw{Completeness, 1}, fw{Examples, 0.8}, fw{Structure, 0.6}, fw{Specificity, 0.5}),
	Knowledge:     weightsOf(fw{Accuracy, 1}, fw{Completeness, 0.9}, fw{Context, 0.7}, fw{Structure, 0.5}, fw{Examples, 0.3}),
	Advice:        weightsOf(fw{Specificity, 1}, fw{Safety, 0.8}, fw{Completeness, 0.6}, fw{Structure, 0.5}, fw{Context, 0.4}),
	Analytical:    weightsOf(fw{Reasoning, 1}, fw{Completeness, 0.8}, fw{Structure, 0.7}, fw{Context, 0.6}, fw{Accuracy, 0.5}),
	Extraction:    weightsOf(fw{Accuracy, 1}, fw{Conciseness, 0.8}, fw{Structure, 0.7}, fw{Specificity, 0.5}),
	Chitchat:      weightsOf(fw{Style, 1}, fw{Conciseness, 0.6}, fw{Context, 0.3}),
}

type fw struct {
	f Facet
	w float64
}

func weightsOf(pairs ...fw) Weights {
	var w Weights
	for _, p := range pairs {
		w[p.f] = p.w
	}
	return w
}

// NeedPrior returns the characteristic need profile of category c.
func NeedPrior(c Category) Weights {
	return needPrior[c]
}

// categoryCues are the words whose presence in a prompt signals its
// category. The corpus templates use these words, the heuristic analyzer
// and the classifier features recover them.
var categoryCues = map[Category][]string{
	Coding:        {"code", "function", "bug", "python", "golang", "implement", "compile", "api", "script", "algorithm", "debug", "program"},
	QA:            {"what", "why", "how", "does", "question", "answer", "when"},
	Writing:       {"write", "essay", "poem", "article", "story", "email", "letter", "blog", "draft"},
	Math:          {"calculate", "solve", "equation", "integral", "probability", "sum", "percent", "math"},
	Reason:        {"puzzle", "riddle", "logic", "deduce", "if", "then", "birds", "trick"},
	Translation:   {"translate", "translation", "french", "spanish", "chinese", "german", "language"},
	Summarization: {"summarize", "summary", "tldr", "condense", "shorten", "key", "points"},
	Roleplay:      {"pretend", "act", "roleplay", "character", "persona", "imagine", "you", "are"},
	Brainstorm:    {"ideas", "brainstorm", "suggest", "list", "names", "options", "creative"},
	Knowledge:     {"explain", "history", "science", "describe", "mechanism", "works", "physiology", "blood", "pressure"},
	Advice:        {"should", "advice", "recommend", "help", "improve", "tips", "best", "way"},
	Analytical:    {"analyze", "compare", "evaluate", "pros", "cons", "assess", "judgment", "trade"},
	Extraction:    {"extract", "parse", "find", "identify", "json", "fields", "entities", "table"},
	Chitchat:      {"hello", "hi", "morning", "thanks", "chat", "feeling", "weekend"},
}

// CategoryCues returns the cue lexicon of category c. Callers must not
// modify the returned slice.
func CategoryCues(c Category) []string {
	return categoryCues[c]
}
