package facet

import (
	"strings"

	"repro/internal/textkit"
)

// RenderDirectives composes a complementary-prompt sentence demanding the
// given facets. The variant key deterministically varies which lexicon
// phrase is used for each facet, so generated augmentations are textually
// diverse while remaining machine-readable through DetectDirectives.
//
// The output follows the paper's instruction to "focus on methodology,
// not specific details, and try to keep it within 30 words".
func RenderDirectives(facets []Facet, variant string) string {
	if len(facets) == 0 {
		return ""
	}
	parts := make([]string, 0, len(facets))
	for i, f := range facets {
		lex := directiveLex[f]
		if len(lex) == 0 {
			continue
		}
		pick := textkit.Bucket(variant+"/"+f.String(), 0xd1ec, len(lex))
		phrase := lex[pick]
		if i == 0 {
			phrase = "Please " + phrase
		}
		parts = append(parts, phrase)
	}
	return strings.Join(parts, "; ") + "."
}

// RenderConflicting composes a defective augmentation that demands a facet
// known to conflict with the prompt's constraints. The corpus and the
// no-selection ablation use it to synthesise the bad pairs that the §3.2
// critic must catch.
func RenderConflicting(constrained Facet, variant string) string {
	for f := 0; f < Count; f++ {
		if Facet(f) != constrained && ConflictsWith(Facet(f), constrained) {
			return RenderDirectives([]Facet{Facet(f)}, variant)
		}
	}
	// No conflicting partner in the taxonomy: fall back to an over-reach.
	return RenderDirectives([]Facet{Completeness, Examples, Context, Safety}, variant)
}

// RenderAnswerLeak composes a defective augmentation that directly answers
// the prompt instead of complementing it (critic defect class 3).
func RenderAnswerLeak(variant string) string {
	cues := AnswerLeakCues()
	pick := textkit.Bucket(variant, 0x1eaf, len(cues))
	return "Here is the solution: " + cues[pick] + " as computed directly."
}
