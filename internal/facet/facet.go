// Package facet defines the shared semantic vocabulary of the PAS
// reproduction: the taxonomy of answer-quality facets, the 14 prompt
// categories of Figure 6, the lexicons that ground those concepts in
// text, and the logic-trap knowledge bank used by case study 1.
//
// Everything downstream — the synthetic corpus generator, the simulated
// LLMs, the pair-quality critic, and the LLM-as-judge — communicates
// through plain text and recovers meaning from that text with the
// analyzers in this package. That keeps the whole pipeline text-grounded:
// a complementary prompt helps a response only because the response
// generator actually reads the directives out of its words, and a judge
// prefers that response only because it can see the needs covered in its
// words.
package facet

import "fmt"

// Facet is one dimension along which a response can serve (or fail) a
// prompt: reasoning depth, structure, conciseness, and so on. Complementary
// prompts work by directing the downstream model's attention to the facets
// the user's prompt needs.
type Facet int

// The facet taxonomy. The ordering is stable and part of the package API:
// persisted policies index facets by these values.
const (
	Reasoning    Facet = iota // step-by-step logical derivation
	TrapAware                 // vigilance against logic traps and trick premises
	Specificity               // concrete, actionable detail
	Structure                 // organised presentation: sections, lists
	Style                     // tone and register constraints
	Context                   // background and framing information
	Completeness              // coverage of all relevant aspects and mechanisms
	Accuracy                  // factual care and verification
	Conciseness               // brevity, staying within bounds
	Examples                  // illustrative examples
	Safety                    // caveats, disclaimers, professional-help pointers
	Planning                  // devising a plan before solving
	numFacets
)

// Count is the number of facets in the taxonomy.
const Count = int(numFacets)

var facetNames = [...]string{
	Reasoning:    "reasoning",
	TrapAware:    "trap-aware",
	Specificity:  "specificity",
	Structure:    "structure",
	Style:        "style",
	Context:      "context",
	Completeness: "completeness",
	Accuracy:     "accuracy",
	Conciseness:  "conciseness",
	Examples:     "examples",
	Safety:       "safety",
	Planning:     "planning",
}

func (f Facet) String() string {
	if f < 0 || int(f) >= Count {
		return fmt.Sprintf("Facet(%d)", int(f))
	}
	return facetNames[f]
}

// Valid reports whether f is a member of the taxonomy.
func (f Facet) Valid() bool { return f >= 0 && int(f) < Count }

// ParseFacet returns the facet with the given name.
func ParseFacet(name string) (Facet, error) {
	for i, n := range facetNames {
		if n == name {
			return Facet(i), nil
		}
	}
	return 0, fmt.Errorf("facet: unknown facet %q", name)
}

// All returns every facet in taxonomy order.
func All() []Facet {
	out := make([]Facet, Count)
	for i := range out {
		out[i] = Facet(i)
	}
	return out
}

// conflicts lists facet pairs that pull a response in opposite directions.
// A complementary prompt that demands a facet conflicting with one of the
// user's stated constraints is a defective augmentation — the critic in
// §3.2 exists to filter exactly these.
var conflicts = map[Facet]Facet{
	Completeness: Conciseness,
	Conciseness:  Completeness,
	Examples:     Conciseness,
}

// ConflictsWith reports whether demanding facet f conflicts with a
// constraint on facet g.
func ConflictsWith(f, g Facet) bool {
	if c, ok := conflicts[f]; ok && c == g {
		return true
	}
	return false
}

// Set is a bitset of facets.
type Set uint32

// NewSet builds a Set from the given facets.
func NewSet(fs ...Facet) Set {
	var s Set
	for _, f := range fs {
		s = s.With(f)
	}
	return s
}

// With returns s with f added.
func (s Set) With(f Facet) Set { return s | 1<<uint(f) }

// Without returns s with f removed.
func (s Set) Without(f Facet) Set { return s &^ (1 << uint(f)) }

// Has reports whether f is in s.
func (s Set) Has(f Facet) bool { return s&(1<<uint(f)) != 0 }

// Len returns the number of facets in s.
func (s Set) Len() int {
	n := 0
	for f := 0; f < Count; f++ {
		if s.Has(Facet(f)) {
			n++
		}
	}
	return n
}

// Facets returns the members of s in taxonomy order.
func (s Set) Facets() []Facet {
	out := make([]Facet, 0, s.Len())
	for f := 0; f < Count; f++ {
		if s.Has(Facet(f)) {
			out = append(out, Facet(f))
		}
	}
	return out
}

func (s Set) String() string {
	out := ""
	for _, f := range s.Facets() {
		if out != "" {
			out += "+"
		}
		out += f.String()
	}
	if out == "" {
		return "none"
	}
	return out
}

// Weights is a dense facet→weight map used for need profiles.
type Weights [Count]float64

// Top returns the k facets with the highest weights, ties broken by
// taxonomy order, excluding zero-weight facets.
func (w Weights) Top(k int) []Facet {
	type fw struct {
		f Facet
		w float64
	}
	all := make([]fw, 0, Count)
	for i, x := range w {
		if x > 0 {
			all = append(all, fw{Facet(i), x})
		}
	}
	// insertion sort: Count is tiny.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].w > all[j-1].w || (all[j].w == all[j-1].w && all[j].f < all[j-1].f)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]Facet, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].f
	}
	return out
}

// Sum returns the total weight.
func (w Weights) Sum() float64 {
	var s float64
	for _, x := range w {
		s += x
	}
	return s
}
