package facet

// The three lexicon families below ground each facet in actual words:
//
//   - directiveLex: phrases a *complementary prompt* uses to demand the
//     facet ("think step by step", "keep it brief").
//   - needCueLex: phrases a *user prompt* uses that signal the facet is
//     needed or constrained ("briefly", "in detail", "exact").
//   - deliveryLex: phrases a *response* uses when it actually delivers the
//     facet ("step 1", "for example", "in summary").
//
// The corpus generator, simulated LLM, PAS model, critic, and judge all
// draw from these same banks, so the only way information flows between
// them is through words — exactly like the real system.

var directiveLex = map[Facet][]string{
	Reasoning:    {"step by step", "show your reasoning", "reason through", "derive", "justify each step", "walk through the logic"},
	TrapAware:    {"watch for a trick", "logic trap", "re-read the premise", "question the assumption", "careful with the wording", "avoid the trap"},
	Specificity:  {"be specific", "concrete details", "exact values", "name concrete", "actionable", "precise"},
	Structure:    {"well-organized", "use sections", "use headings", "bullet points", "organized", "clear structure"},
	Style:        {"match the tone", "formal tone", "consistent style", "appropriate register", "stylistic constraints", "keep the voice"},
	Context:      {"provide background", "give context", "from a physiological and medical perspective", "relevant perspective", "frame the answer", "background information"},
	Completeness: {"comprehensive", "cover all aspects", "explain the mechanisms", "detailed analysis", "influencing factors", "all relevant"},
	Accuracy:     {"be accurate", "verify facts", "double-check", "factually correct", "cite evidence", "exclude ineffective"},
	Conciseness:  {"keep it brief", "be concise", "within 30 words", "short answer", "no filler", "to the point"},
	Examples:     {"include examples", "illustrate with", "worked example", "sample input", "for instance", "show a demo"},
	Safety:       {"add caveats", "mention risks", "consult a professional", "note limitations", "disclaimer", "when to seek help"},
	Planning:     {"devise a plan", "outline first", "plan before", "sketch the approach", "break into subtasks", "plan then solve"},
}

var needCueLex = map[Facet][]string{
	Reasoning:    {"prove", "why", "derive", "deduce", "reason", "logic", "step"},
	TrapAware:    {"riddle", "trick", "puzzle"},
	Specificity:  {"exact", "specific", "precisely", "concrete", "which", "quickly"},
	Structure:    {"list", "table", "outline", "organized", "sections", "format"},
	Style:        {"tone", "formal", "casual", "style", "poem", "persona", "voice"},
	Context:      {"background", "context", "history", "perspective", "overview"},
	Completeness: {"detailed", "comprehensive", "thorough", "all", "everything", "in depth", "mechanisms"},
	Accuracy:     {"correct", "accurate", "true", "fact", "really", "actually"},
	Conciseness:  {"briefly", "concise", "short", "quick", "tldr", "one sentence", "summary"},
	Examples:     {"example", "examples", "sample", "instance", "demo"},
	Safety:       {"safe", "risk", "health", "medical", "legal", "danger"},
	Planning:     {"plan", "strategy", "approach", "roadmap", "steps"},
}

var deliveryLex = map[Facet][]string{
	Reasoning:    {"step 1", "therefore", "it follows that", "because", "which implies", "let us reason"},
	TrapAware:    {"note the wording", "the premise hides", "re-reading the question", "this is a trick", "the trap here"},
	Specificity:  {"specifically", "in particular", "the exact", "concretely", "namely"},
	Structure:    {"first,", "second,", "finally,", "in summary", "## ", "- "},
	Style:        {"in keeping with the requested tone", "as the style requires", "maintaining the register", "in the requested voice"},
	Context:      {"by way of background", "historically", "for context", "from a broader perspective", "physiological"},
	Completeness: {"covering all aspects", "another important factor", "additionally", "furthermore", "a further mechanism", "influencing factors include"},
	Accuracy:     {"verified", "to be precise", "it is established that", "the correct value", "excluding ineffective"},
	Conciseness:  {"in short", "briefly", "in one line", "tl;dr"},
	Examples:     {"for example", "consider the case", "e.g.", "as an illustration", "sample:"},
	Safety:       {"please note the risks", "consult a professional", "this is not a substitute", "use caution", "important caveat"},
	Planning:     {"the plan is", "we will proceed in stages", "outline of the approach", "phase one", "subtasks:"},
}

// DirectiveLexicon returns the phrases that demand facet f in a
// complementary prompt. Callers must not modify the returned slice.
func DirectiveLexicon(f Facet) []string { return directiveLex[f] }

// NeedCueLexicon returns the user-prompt phrases signalling facet f.
func NeedCueLexicon(f Facet) []string { return needCueLex[f] }

// DeliveryLexicon returns the response phrases that deliver facet f.
func DeliveryLexicon(f Facet) []string { return deliveryLex[f] }

// answerLeakCues are phrases indicating that a "complementary prompt"
// actually answered the question instead of supplementing it — defect
// class 3 in the paper's critic prompt (Figure 5).
var answerLeakCues = []string{
	"the answer is", "the result is", "equals", "here is the solution",
	"the correct answer", "in conclusion, it is",
}

// AnswerLeakCues returns the direct-answer giveaway phrases.
func AnswerLeakCues() []string { return answerLeakCues }
