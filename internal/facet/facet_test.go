package facet

import (
	"testing"
	"testing/quick"
)

func TestFacetNamesRoundTrip(t *testing.T) {
	for _, f := range All() {
		got, err := ParseFacet(f.String())
		if err != nil {
			t.Fatalf("ParseFacet(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
	if _, err := ParseFacet("nonsense"); err == nil {
		t.Error("unknown facet should fail")
	}
	if Facet(99).String() != "Facet(99)" {
		t.Error("out-of-range String wrong")
	}
	if Facet(99).Valid() {
		t.Error("out-of-range facet should be invalid")
	}
}

func TestCategoryNamesRoundTrip(t *testing.T) {
	if len(Categories()) != 14 {
		t.Fatalf("paper has 14 categories, got %d", len(Categories()))
	}
	for _, c := range Categories() {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v -> %v, %v", c, got, err)
		}
	}
	if _, err := ParseCategory("nope"); err == nil {
		t.Error("unknown category should fail")
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(Reasoning, Conciseness)
	if !s.Has(Reasoning) || !s.Has(Conciseness) || s.Has(Style) {
		t.Fatalf("set membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s = s.Without(Reasoning)
	if s.Has(Reasoning) || s.Len() != 1 {
		t.Fatalf("Without failed: %v", s)
	}
	if NewSet().String() != "none" {
		t.Error("empty set string wrong")
	}
	if got := NewSet(Reasoning, Accuracy).String(); got != "reasoning+accuracy" {
		t.Errorf("set string = %q", got)
	}
}

func TestSetPropertyWithHasWithout(t *testing.T) {
	f := func(raw uint8, n uint8) bool {
		fa := Facet(int(n) % Count)
		s := Set(raw)
		return s.With(fa).Has(fa) && !s.Without(fa).Has(fa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConflicts(t *testing.T) {
	if !ConflictsWith(Completeness, Conciseness) {
		t.Error("completeness should conflict with conciseness")
	}
	if !ConflictsWith(Examples, Conciseness) {
		t.Error("examples should conflict with conciseness")
	}
	if ConflictsWith(Reasoning, Style) {
		t.Error("reasoning/style should not conflict")
	}
}

func TestWeightsTop(t *testing.T) {
	var w Weights
	w[Reasoning] = 0.9
	w[Accuracy] = 1.0
	w[Style] = 0.1
	top := w.Top(2)
	if len(top) != 2 || top[0] != Accuracy || top[1] != Reasoning {
		t.Fatalf("Top(2) = %v", top)
	}
	if got := w.Top(10); len(got) != 3 {
		t.Fatalf("Top(10) should clamp to non-zero entries, got %v", got)
	}
	if w.Sum() != 2.0 {
		t.Fatalf("Sum = %v", w.Sum())
	}
}

func TestNeedPriorsCoverEveryCategory(t *testing.T) {
	for _, c := range Categories() {
		if NeedPrior(c).Sum() == 0 {
			t.Errorf("category %v has empty need prior", c)
		}
		if len(CategoryCues(c)) == 0 {
			t.Errorf("category %v has no cue lexicon", c)
		}
	}
}

func TestLexiconsNonEmpty(t *testing.T) {
	for _, f := range All() {
		if len(DirectiveLexicon(f)) == 0 {
			t.Errorf("facet %v missing directive lexicon", f)
		}
		if len(NeedCueLexicon(f)) == 0 {
			t.Errorf("facet %v missing need-cue lexicon", f)
		}
		if len(DeliveryLexicon(f)) == 0 {
			t.Errorf("facet %v missing delivery lexicon", f)
		}
	}
}

func TestAnalyzeDetectsCodingPrompt(t *testing.T) {
	a := AnalyzePrompt("Write a python function to parse json and fix the bug in my code")
	if a.Category != Coding {
		t.Fatalf("category = %v, want coding", a.Category)
	}
	if a.Needs[Specificity] == 0 {
		t.Error("coding prompts should need specificity")
	}
}

func TestAnalyzeDetectsConstraints(t *testing.T) {
	a := AnalyzePrompt("Briefly explain how photosynthesis works")
	if !a.Constraints.Has(Conciseness) {
		t.Fatalf("briefly should constrain conciseness: %v", a.Constraints)
	}
}

func TestAnalyzeDetectsTrap(t *testing.T) {
	a := AnalyzePrompt("If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?")
	if !a.Trapped {
		t.Fatal("bird trap not detected")
	}
	if a.Trap.Name != "shot-birds" {
		t.Fatalf("trap = %v", a.Trap.Name)
	}
	if a.Needs[TrapAware] < 1 {
		t.Error("trap should raise trap-aware need")
	}
}

func TestAnalyzeComplexityBounded(t *testing.T) {
	f := func(s string) bool {
		a := AnalyzePrompt(s)
		return a.Complexity >= 0 && a.Complexity <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDirectivesRoundTrip(t *testing.T) {
	// Every facet rendered as a directive must be recoverable.
	for _, f := range All() {
		aug := RenderDirectives([]Facet{f}, "variant-a")
		got := DetectDirectives(aug)
		if !got.Has(f) {
			t.Errorf("facet %v lost in render/detect round trip: %q -> %v", f, aug, got)
		}
	}
}

func TestRenderDirectivesMultipleAndEmpty(t *testing.T) {
	if RenderDirectives(nil, "x") != "" {
		t.Error("empty facet list should render empty string")
	}
	aug := RenderDirectives([]Facet{Reasoning, Structure, Accuracy}, "v1")
	got := DetectDirectives(aug)
	for _, f := range []Facet{Reasoning, Structure, Accuracy} {
		if !got.Has(f) {
			t.Errorf("multi-facet render lost %v: %q", f, aug)
		}
	}
}

func TestRenderVariantsDiffer(t *testing.T) {
	a := RenderDirectives([]Facet{Reasoning}, "v1")
	diverse := false
	for i := 0; i < 10; i++ {
		if RenderDirectives([]Facet{Reasoning}, string(rune('a'+i))) != a {
			diverse = true
			break
		}
	}
	if !diverse {
		t.Error("variants never change the rendered phrase")
	}
}

func TestAnswerLeakDetection(t *testing.T) {
	if !DetectAnswerLeak(RenderAnswerLeak("v")) {
		t.Error("rendered answer leak not detected")
	}
	if DetectAnswerLeak(RenderDirectives([]Facet{Reasoning}, "v")) {
		t.Error("clean directive flagged as leak")
	}
}

func TestRenderConflictingIsDetectedAsConflict(t *testing.T) {
	a := AnalyzePrompt("Briefly summarize the key points of this article")
	if !a.Constraints.Has(Conciseness) {
		t.Fatal("setup: conciseness constraint missing")
	}
	bad := RenderConflicting(Conciseness, "v9")
	dirs := DetectDirectives(bad)
	if len(ConflictingDirectives(a, dirs)) == 0 {
		t.Fatalf("rendered conflict %q not detected against constraints %v", bad, a.Constraints)
	}
}

func TestRenderConflictingFallback(t *testing.T) {
	// Style has no conflicting partner: expect the over-reach fallback,
	// which must still parse as directives.
	bad := RenderConflicting(Style, "v")
	if DetectDirectives(bad).Len() < 2 {
		t.Fatalf("fallback over-reach should demand several facets: %q", bad)
	}
}

func TestTrapBank(t *testing.T) {
	if len(Traps()) < 5 {
		t.Fatal("trap bank too small")
	}
	tr, ok := TrapByName("shot-birds")
	if !ok {
		t.Fatal("shot-birds missing")
	}
	if !tr.ClaimsWrong("I think Nine birds remain on the tree.") {
		t.Error("wrong claim not matched")
	}
	if !tr.ClaimsRight("So only the one shot bird is on the ground, since the rest fly away.") {
		t.Error("right claim not matched")
	}
	if _, ok := TrapByName("missing"); ok {
		t.Error("missing trap should not be found")
	}
	if _, ok := FindTrap("completely unrelated text"); ok {
		t.Error("no trap should be found")
	}
}

func TestDetectDeliveredCapsAtThree(t *testing.T) {
	text := "for example x. for instance y. e.g. z. as an illustration w. sample: v."
	w := DetectDelivered(text)
	if w[Examples] != 3 {
		t.Fatalf("examples delivery = %v, want capped at 3", w[Examples])
	}
}
