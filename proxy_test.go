package pas

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chatapi"
	"repro/internal/simllm"
)

func proxyFixture(t *testing.T) (*chatapi.Client, *chatapi.Client) {
	t.Helper()
	// Upstream: the simulated chat API.
	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	t.Cleanup(upstream.Close)

	// The PAS proxy in front of it.
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	direct, err := chatapi.NewClient(chatapi.ClientConfig{BaseURL: upstream.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	proxied, err := chatapi.NewClient(chatapi.ClientConfig{BaseURL: front.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return direct, proxied
}

func TestNewProxyValidation(t *testing.T) {
	sys := testSystem(t).System
	if _, err := NewProxy(nil, "http://x"); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := NewProxy(sys, "not-a-url/"); err == nil {
		t.Error("relative upstream should fail")
	}
	if _, err := NewProxy(sys, "://bad"); err == nil {
		t.Error("malformed upstream should fail")
	}
}

func TestProxyAugmentsChatRequests(t *testing.T) {
	direct, proxied := proxyFixture(t)
	req := chatapi.ChatRequest{
		Model:    simllm.GPT40613,
		Seed:     "proxy-test",
		Messages: []chatapi.Message{{Role: "user", Content: "Explain how tides form."}},
	}
	bare, err := direct.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	augmented, err := proxied.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	// The proxied request must produce a different (augmented) response,
	// and it must match what explicit augmentation over the direct path
	// would produce — the proxy is exactly the Augment transform.
	if augmented.Choices[0].Message.Content == bare.Choices[0].Message.Content {
		t.Fatal("proxy changed nothing")
	}
	sys := testSystem(t).System
	explicit, err := direct.ChatCompletion(chatapi.ChatRequest{
		Model: simllm.GPT40613,
		Seed:  "proxy-test",
		Messages: []chatapi.Message{{
			Role:    "user",
			Content: sys.Augment("Explain how tides form.", `"proxy-test"`),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if augmented.Choices[0].Message.Content != explicit.Choices[0].Message.Content {
		t.Fatal("proxied response differs from explicit augmentation")
	}
}

func TestProxyPreservesNonChatPaths(t *testing.T) {
	_, proxied := proxyFixture(t)
	models, err := proxied.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("model listing should pass through the proxy")
	}
}

func TestProxyStreamingPassesThrough(t *testing.T) {
	_, proxied := proxyFixture(t)
	var chunks int
	content, err := proxied.ChatCompletionStream(chatapi.ChatRequest{
		Model:    simllm.GPT40613,
		Seed:     "stream-proxy",
		Messages: []chatapi.Message{{Role: "user", Content: "Explain the science of fermentation."}},
	}, func(string) { chunks++ })
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 2 || content == "" {
		t.Fatalf("streaming through proxy broken: %d chunks", chunks)
	}
}

// TestProxyRejectsGarbageChatBody sends a raw broken body straight
// through net/http (the chatapi client validates JSON before sending, so
// garbage cannot come from it).
func TestProxyRejectsGarbageChatBody(t *testing.T) {
	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	defer upstream.Close()
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()
	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// captureUpstream is an upstream that records the exact bytes of each
// request body, for byte-level passthrough assertions.
func captureUpstream(t *testing.T) (*httptest.Server, *[][]byte) {
	t.Helper()
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("upstream read: %v", err)
		}
		bodies = append(bodies, b)
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &bodies
}

// TestProxyPassesThroughNonChatPOSTUnchanged: POST bodies on non-chat
// paths must reach the upstream byte-for-byte (embeddings, moderations,
// anything the proxy does not understand).
func TestProxyPassesThroughNonChatPOSTUnchanged(t *testing.T) {
	upstream, bodies := captureUpstream(t)
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	sent := `{"input":"some text","model":"embed-1"}`
	resp, err := front.Client().Post(front.URL+"/v1/embeddings", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(*bodies) != 1 || string((*bodies)[0]) != sent {
		t.Fatalf("upstream saw %q, want untouched %q", *bodies, sent)
	}
}

// TestProxyChatWithoutUserMessageUnchanged: a chat request with no user
// turn anywhere has nothing to augment and must pass through
// byte-for-byte.
func TestProxyChatWithoutUserMessageUnchanged(t *testing.T) {
	upstream, bodies := captureUpstream(t)
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	sent := `{"model":"m","messages":[{"role":"system","content":"be terse"},{"role":"assistant","content":"ok"}]}`
	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(*bodies) != 1 || string((*bodies)[0]) != sent {
		t.Fatalf("upstream saw %q, want untouched %q", *bodies, sent)
	}
}

// TestProxyAugmentsLastUserTurnEvenMidConversation: when the final
// message is an assistant turn, the proxy still augments the *last
// user* turn — the complement attaches to what the user asked, and
// later assistant turns pass through untouched.
func TestProxyAugmentsLastUserTurnEvenMidConversation(t *testing.T) {
	upstream, bodies := captureUpstream(t)
	sys := testSystem(t).System
	proxy, err := NewProxy(sys, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	sent := `{"model":"m","messages":[{"role":"user","content":"Explain how tides form."},{"role":"assistant","content":"Gravity."}]}`
	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(*bodies) != 1 {
		t.Fatalf("upstream saw %d bodies", len(*bodies))
	}
	var got chatPayload
	if err := json.Unmarshal((*bodies)[0], &got); err != nil {
		t.Fatal(err)
	}
	if want := sys.Augment("Explain how tides form.", ""); got.Messages[0].Content != want {
		t.Fatalf("user turn = %q, want augmented %q", got.Messages[0].Content, want)
	}
	if got.Messages[1].Content != "Gravity." {
		t.Fatalf("assistant turn rewritten to %q", got.Messages[1].Content)
	}
}

// TestProxyUsesServingCore: a proxy whose system has the serving core
// enabled serves repeated identical chat requests from the complement
// cache — one computation, one cache hit, visible in the stats.
func TestProxyUsesServingCore(t *testing.T) {
	upstream, _ := captureUpstream(t)
	sys := NewSystem(testSystem(t).System.model)
	if err := sys.EnableServing(ServingConfig{}); err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(sys, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	sent := `{"model":"m","seed":"s7","messages":[{"role":"user","content":"Explain how tides form."}]}`
	for i := 0; i < 2; i++ {
		resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader(sent))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	stats := sys.core.Stats()
	if stats.Requests != 2 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("serving stats = %+v, want 2 requests with 1 cache hit", stats)
	}
}
