package pas

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chatapi"
	"repro/internal/simllm"
)

func proxyFixture(t *testing.T) (*chatapi.Client, *chatapi.Client) {
	t.Helper()
	// Upstream: the simulated chat API.
	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	t.Cleanup(upstream.Close)

	// The PAS proxy in front of it.
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	direct, err := chatapi.NewClient(chatapi.ClientConfig{BaseURL: upstream.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	proxied, err := chatapi.NewClient(chatapi.ClientConfig{BaseURL: front.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return direct, proxied
}

func TestNewProxyValidation(t *testing.T) {
	sys := testSystem(t).System
	if _, err := NewProxy(nil, "http://x"); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := NewProxy(sys, "not-a-url/"); err == nil {
		t.Error("relative upstream should fail")
	}
	if _, err := NewProxy(sys, "://bad"); err == nil {
		t.Error("malformed upstream should fail")
	}
}

func TestProxyAugmentsChatRequests(t *testing.T) {
	direct, proxied := proxyFixture(t)
	req := chatapi.ChatRequest{
		Model:    simllm.GPT40613,
		Seed:     "proxy-test",
		Messages: []chatapi.Message{{Role: "user", Content: "Explain how tides form."}},
	}
	bare, err := direct.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	augmented, err := proxied.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	// The proxied request must produce a different (augmented) response,
	// and it must match what explicit augmentation over the direct path
	// would produce — the proxy is exactly the Augment transform.
	if augmented.Choices[0].Message.Content == bare.Choices[0].Message.Content {
		t.Fatal("proxy changed nothing")
	}
	sys := testSystem(t).System
	explicit, err := direct.ChatCompletion(chatapi.ChatRequest{
		Model: simllm.GPT40613,
		Seed:  "proxy-test",
		Messages: []chatapi.Message{{
			Role:    "user",
			Content: sys.Augment("Explain how tides form.", `"proxy-test"`),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if augmented.Choices[0].Message.Content != explicit.Choices[0].Message.Content {
		t.Fatal("proxied response differs from explicit augmentation")
	}
}

func TestProxyPreservesNonChatPaths(t *testing.T) {
	_, proxied := proxyFixture(t)
	models, err := proxied.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("model listing should pass through the proxy")
	}
}

func TestProxyStreamingPassesThrough(t *testing.T) {
	_, proxied := proxyFixture(t)
	var chunks int
	content, err := proxied.ChatCompletionStream(chatapi.ChatRequest{
		Model:    simllm.GPT40613,
		Seed:     "stream-proxy",
		Messages: []chatapi.Message{{Role: "user", Content: "Explain the science of fermentation."}},
	}, func(string) { chunks++ })
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 2 || content == "" {
		t.Fatalf("streaming through proxy broken: %d chunks", chunks)
	}
}

// TestProxyRejectsGarbageChatBody sends a raw broken body straight
// through net/http (the chatapi client validates JSON before sending, so
// garbage cannot come from it).
func TestProxyRejectsGarbageChatBody(t *testing.T) {
	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	defer upstream.Close()
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()
	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
