package pas

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/httpmw"
	"repro/internal/loadgen"
)

// overloadFixture is one passerve-equivalent replica tuned for the
// overload drill: caching off so every request costs a computation,
// a padded compute (the -compute-delay knob) so a modest request rate
// saturates it, a small adaptive ceiling, and the brownout ladder
// armed. Requests are admitted through the tenant fair-share queue via
// the same httpmw.Tenant middleware passerve mounts.
type overloadFixture struct {
	sys *System
	srv *httptest.Server
}

func newOverloadFixture(t *testing.T) *overloadFixture {
	t.Helper()
	model := testSystem(t).System.model
	sys := NewSystem(model)
	if err := sys.EnableServing(ServingConfig{
		CacheSize:     -1,
		ComputeDelay:  25 * time.Millisecond,
		MaxInFlight:   4,
		AdaptiveLimit: true,
		LimitFloor:    1,
		LimitTarget:   60 * time.Millisecond,
		QueueDepth:    64,
		QueueWait:     250 * time.Millisecond,
		Brownout:      true,
		// Fail closed: a hard shed must surface as a deliberate 503 so
		// the isolation numbers count refusals instead of hiding them
		// behind fail-open passthroughs.
		Degrade: false,
		Retries: 0,
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpmw.Chain(sys.Handler(), httpmw.Tenant()))
	t.Cleanup(srv.Close)
	return &overloadFixture{sys: sys, srv: srv}
}

// pressureRung reads the brownout rung the replica is advertising on
// /v1/status ("" full, "trim", "raw"). ok is false when the probe
// itself failed — callers run it from a watcher goroutine, so it never
// fails the test directly.
func (f *overloadFixture) pressureRung() (rung string, ok bool) {
	resp, err := http.Get(f.srv.URL + "/v1/status")
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var wire struct {
		Pressure string `json:"pressure"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return "", false
	}
	return wire.Pressure, true
}

// overloadScenario holds both phases of the drill plus the ladder rungs
// observed while the flood ran — the shape committed as
// BENCH_overload.json.
type overloadScenario struct {
	// Solo is the well-behaved tenant alone at its normal rate; Flood
	// adds a 10x-share noisy neighbor pushing the offered load to ~3x
	// the replica's saturation point.
	Solo  loadgen.Report `json:"solo"`
	Flood loadgen.Report `json:"flood"`
	// RungsSeen are the /v1/status pressure values observed during the
	// flood; RecoveredMs is how long after the flood the gauge took to
	// advertise full quality again.
	RungsSeen   []string `json:"rungs_seen"`
	RecoveredMs float64  `json:"recovered_ms"`
}

// runOverloadScenario drives the two-phase drill against a fresh
// fixture. Capacity is ~160 QPS (ceiling 4 / 25ms compute): the solo
// phase offers 40 QPS from one tenant; the flood phase offers ~440 QPS
// total with tenant t0 carrying 10x t1's share — so t1 still offers its
// solo ~40 QPS while t0 floods.
func runOverloadScenario(t *testing.T) overloadScenario {
	t.Helper()
	f := newOverloadFixture(t)
	ctx := context.Background()
	corpus := benchPrompts(64)

	solo, err := loadgen.Run(ctx, loadgen.Config{
		Target:      f.srv.URL,
		Prompts:     corpus,
		Requests:    120,
		QPS:         40,
		Concurrency: 16,
		Seed:        3,
		Tenants:     1, // every request labeled t0 — the solo baseline
	})
	if err != nil {
		t.Fatal(err)
	}

	// Watch the ladder while the flood runs.
	rungs := make(map[string]bool)
	watcherStop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		tick := time.NewTicker(15 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-watcherStop:
				return
			case <-tick.C:
				if rung, ok := f.pressureRung(); ok {
					rungs[rung] = true
				}
			}
		}
	}()

	flood, err := loadgen.Run(ctx, loadgen.Config{
		Target:      f.srv.URL,
		Prompts:     corpus,
		Requests:    1300,
		QPS:         440,
		Concurrency: 96,
		Seed:        4,
		Tenants:     2,
		TenantSkew:  10, // t0 offers ~400 QPS, t1 its solo ~40 QPS
	})
	close(watcherStop)
	<-watcherDone
	if err != nil {
		t.Fatal(err)
	}

	// Recovery: with the flood gone, light traffic must walk the gauge
	// back to full quality. The rung is latched with hysteresis, so a
	// few cheap completions are what clears it.
	recoverStart := time.Now()
	recovered := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		_, _, _ = f.sys.AugmentContextLevel(ctx, "recovery probe", "")
		if rung, ok := f.pressureRung(); ok && rung == "" {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("ladder never stepped back to full quality; rungs seen during flood: %v", rungs)
	}

	sc := overloadScenario{
		Solo:        solo,
		Flood:       flood,
		RecoveredMs: float64(time.Since(recoverStart)) / float64(time.Millisecond),
	}
	for r := range rungs {
		if r != "" {
			sc.RungsSeen = append(sc.RungsSeen, r)
		}
	}
	return sc
}

// tenantRow finds one tenant's report row.
func tenantRow(t *testing.T, rep loadgen.Report, tenant string) loadgen.TenantReport {
	t.Helper()
	for _, row := range rep.Tenants {
		if row.Tenant == tenant {
			return row
		}
	}
	t.Fatalf("tenant %q missing from report rows: %+v", tenant, rep.Tenants)
	return loadgen.TenantReport{}
}

// TestOverloadE2EIsolationAndLadder is the overload chaos drill: a
// replica driven to ~3x saturation by a 10x-share flooding tenant must
// (1) keep the well-behaved tenant's shed rate and p99 inside its
// solo-baseline band — the fair-share isolation guarantee, (2) answer
// everything deliberately (200 or 503+Retry-After, never a 5xx error),
// and (3) step down the brownout ladder under pressure and recover to
// full quality after the flood.
func TestOverloadE2EIsolationAndLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("overload drill is seconds-scale")
	}
	sc := runOverloadScenario(t)

	// Zero PAS-side hard failures in either phase: every request was
	// answered 200 or deliberately shed 503.
	if sc.Solo.Errors != 0 {
		t.Fatalf("solo phase: %d errors (first: %s)", sc.Solo.Errors, sc.Solo.FirstError)
	}
	if sc.Flood.Errors != 0 {
		t.Fatalf("flood phase: %d errors (first: %s)", sc.Flood.Errors, sc.Flood.FirstError)
	}

	soloRow := tenantRow(t, sc.Solo, "t0") // the lone tenant's baseline
	wellBehaved := tenantRow(t, sc.Flood, "t1")
	flooder := tenantRow(t, sc.Flood, "t0")

	// The flooder carried the overload: it offered ~10x and got shed
	// hard, while the well-behaved tenant's shed fraction stayed within
	// its solo band (+15 points of CI slack on a ~0% baseline).
	if flooder.Requests <= 5*wellBehaved.Requests {
		t.Fatalf("skew did not materialize: flooder %d vs well-behaved %d requests",
			flooder.Requests, wellBehaved.Requests)
	}
	soloShedFrac := float64(soloRow.Shed) / float64(soloRow.Requests)
	bShedFrac := float64(wellBehaved.Shed) / float64(wellBehaved.Requests)
	if bShedFrac > soloShedFrac+0.15 {
		t.Fatalf("isolation broken: well-behaved shed %.1f%% under flood vs %.1f%% solo (rows: flood=%+v solo=%+v)",
			100*bShedFrac, 100*soloShedFrac, wellBehaved, soloRow)
	}
	// Fair share's bite shows up in queueing: the flooder's DRR bucket
	// backlogs (it offers ~2.5x its half-share) while the well-behaved
	// bucket drains every round, so B's median latency stays strictly
	// below the flooder's. (The brownout ladder may absorb the entire
	// overload without shedding — that is the design succeeding, so no
	// flooder-shed floor is asserted.)
	if wellBehaved.LatencyP50Ms >= flooder.LatencyP50Ms {
		t.Fatalf("fair share did not prioritize the well-behaved tenant: p50 %.1fms >= flooder's %.1fms",
			wellBehaved.LatencyP50Ms, flooder.LatencyP50Ms)
	}

	// p99 band: the queue wait bounds added latency at 250ms; allow
	// that plus scheduler slack on top of the solo baseline.
	if limit := soloRow.LatencyP99Ms + 400; wellBehaved.LatencyP99Ms > limit {
		t.Fatalf("isolation broken: well-behaved p99 %.1fms under flood vs %.1fms solo (limit %.1fms)",
			wellBehaved.LatencyP99Ms, soloRow.LatencyP99Ms, limit)
	}

	// The ladder stepped down during the flood (some requests served
	// below full quality, and /v1/status advertised a rung) — and
	// runOverloadScenario already proved it stepped back up.
	if sc.Flood.Degraded == 0 {
		t.Fatalf("brownout never engaged: flood report %+v", sc.Flood)
	}
	if len(sc.RungsSeen) == 0 {
		t.Fatal("/v1/status never advertised a pressure rung during the flood")
	}

	// The solo phase ran the same stack below saturation: nothing shed,
	// nothing degraded — the overload machinery is free when idle.
	if soloShedFrac > 0.05 {
		t.Fatalf("solo baseline unexpectedly shed %.1f%%: %+v", 100*soloShedFrac, soloRow)
	}
}

// TestOverloadE2EBenchReport regenerates BENCH_overload.json — the
// committed evidence of the drill. Gated like the other BENCH fixtures:
// `PAS_BENCH_OUT=BENCH_overload.json go test -run
// '^TestOverloadE2EBenchReport$' .`
func TestOverloadE2EBenchReport(t *testing.T) {
	path := os.Getenv("PAS_BENCH_OUT")
	if path == "" {
		t.Skip("set PAS_BENCH_OUT=BENCH_overload.json to regenerate the overload drill report")
	}
	sc := runOverloadScenario(t)
	blob, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
