// Onlineab runs the deployment decision a PAS rollout actually faces:
// split live traffic between a control arm (no augmentation) and a
// treatment arm (PAS), collect availability signals from raters, and
// stop when the two-proportion test is conclusive — the §4.5 online
// evaluation as a reusable experiment.
//
//	go run ./examples/onlineab
package main

import (
	"fmt"
	"log"

	pas "repro"
	"repro/internal/abtest"
	"repro/internal/corpus"
	"repro/internal/humaneval"
	"repro/internal/simllm"
)

func main() {
	log.SetFlags(0)

	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	fmt.Println("building PAS...")
	built, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Live traffic: a stream of fresh user prompts.
	trafficCfg := corpus.DefaultConfig()
	trafficCfg.Seed = 4242
	trafficCfg.Size = 400
	trafficCfg.JunkRate = 0
	trafficCfg.DuplicateRate = 0
	traffic, err := corpus.Generate(trafficCfg)
	if err != nil {
		log.Fatal(err)
	}

	raters, err := humaneval.NewPool(5, 7)
	if err != nil {
		log.Fatal(err)
	}
	main := simllm.MustModel(simllm.Qwen272B)

	test, err := abtest.New(abtest.Config{Alpha: 0.05, MinPerArm: 80, Sequential: true})
	if err != nil {
		log.Fatal(err)
	}

	for i, p := range traffic {
		salt := fmt.Sprintf("traffic/%d", i)
		arm := test.Assign()
		input := p.Text
		if arm == abtest.Treatment {
			input = built.System.Augment(p.Text, salt)
		}
		resp := main.Respond(input, simllm.Options{Salt: salt})
		success := raters[i%len(raters)].Rate(p.Text, resp) >= 4
		if err := test.Record(arm, success); err != nil {
			log.Fatal(err)
		}
		if (i+1)%100 == 0 {
			r := test.Evaluate()
			fmt.Printf("after %3d requests: %s\n", i+1, r)
			if r.Significant {
				break
			}
		}
	}

	final := test.Evaluate()
	fmt.Printf("\nfinal: %s\n", final)
	if final.Significant && final.TreatmentWins {
		fmt.Println("decision: roll PAS out to 100% of traffic")
	} else {
		fmt.Println("decision: keep collecting")
	}
}
