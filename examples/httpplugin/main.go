// Httpplugin demonstrates the plug-and-play deployment of §3.4: PAS runs
// as an HTTP microservice and a separate application (here, in the same
// process for convenience) calls it before talking to its own LLM. This
// is the integration path for models "available via public APIs".
//
//	go run ./examples/httpplugin
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	pas "repro"
	"repro/internal/simllm"
)

func main() {
	log.SetFlags(0)

	// --- service side -------------------------------------------------
	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	built, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: built.System.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("PAS service listening on %s\n\n", baseURL)

	// --- application side ----------------------------------------------
	client, err := pas.NewClient(baseURL)
	if err != nil {
		log.Fatal(err)
	}
	if !client.Healthy() {
		log.Fatal("service unhealthy")
	}

	llm := simllm.MustModel(simllm.Qwen272B) // the application's own model
	prompts := []string{
		"Give me advice on negotiating a salary offer.",
		"Summarize this long article about coral reefs into key points.",
		"Explain the science of fermentation.",
	}
	for i, p := range prompts {
		out, err := client.Augment(p, fmt.Sprintf("req/%d", i))
		if err != nil {
			log.Fatal(err)
		}
		resp := llm.Respond(out.Augmented, simllm.Options{Salt: fmt.Sprintf("req/%d", i)})
		fmt.Printf("prompt: %s\n", p)
		fmt.Printf("  service complement: %s\n", out.Complement)
		fmt.Printf("  %s replied with %d chars\n\n", llm.Name(), len(resp))
	}
	fmt.Println("done — any HTTP-capable application can plug PAS in the same way")
}
