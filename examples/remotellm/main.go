// Remotellm demonstrates the production topology of §3.4: PAS runs
// locally while the downstream LLM lives behind a public chat-completions
// API (here, the simulated roster served in-process). The example meters
// the token overhead the complementary prompt adds to each request —
// "extremely low cost" is a measurable claim.
//
//	go run ./examples/remotellm
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	pas "repro"
	"repro/internal/chatapi"
	"repro/internal/corpus"
	"repro/internal/simllm"
	"repro/internal/tokenizer"
)

func main() {
	log.SetFlags(0)

	// --- the "public" LLM API -----------------------------------------
	poolCfg := corpus.DefaultConfig()
	poolCfg.Size = 1500
	pool, err := corpus.Generate(poolCfg)
	if err != nil {
		log.Fatal(err)
	}
	texts := make([]string, len(pool))
	for i, p := range pool {
		texts[i] = p.Text
	}
	tok, err := tokenizer.Train(texts, tokenizer.Config{VocabSize: 1024, MinPairFreq: 2})
	if err != nil {
		log.Fatal(err)
	}
	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{Tokenizer: tok})
	if err != nil {
		log.Fatal(err)
	}
	api := httptest.NewServer(apiServer.Handler())
	defer api.Close()
	fmt.Printf("chat-completions API at %s\n", api.URL)

	// --- local PAS ------------------------------------------------------
	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	built, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	client, err := chatapi.NewClient(chatapi.ClientConfig{BaseURL: api.URL, APIKey: "demo-key", MaxRetries: 2})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := chatapi.NewRemote(client, simllm.GPT4Turbo)
	if err != nil {
		log.Fatal(err)
	}

	prompt := "Analyze the trade offs of monolith versus microservices."

	// Bare request, for the cost comparison.
	bare, err := client.ChatCompletion(chatapi.ChatRequest{
		Model:    simllm.GPT4Turbo,
		Messages: []chatapi.Message{{Role: "user", Content: prompt}},
		Seed:     "remote-demo",
	})
	if err != nil {
		log.Fatal(err)
	}

	// PAS-enhanced request over the same API.
	enhanced, err := built.System.Enhance(remote, prompt, "remote-demo")
	if err != nil {
		log.Fatal(err)
	}
	augmented, err := client.ChatCompletion(chatapi.ChatRequest{
		Model:    simllm.GPT4Turbo,
		Messages: []chatapi.Message{{Role: "user", Content: prompt + "\n" + enhanced.Complement}},
		Seed:     "remote-demo",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprompt: %s\n", prompt)
	fmt.Printf("PAS complement: %s\n\n", enhanced.Complement)
	fmt.Printf("bare request:      %3d prompt tokens, %3d completion tokens\n",
		bare.Usage.PromptTokens, bare.Usage.CompletionTokens)
	fmt.Printf("augmented request: %3d prompt tokens (+%d overhead), %3d completion tokens\n",
		augmented.Usage.PromptTokens, augmented.Usage.PromptTokens-bare.Usage.PromptTokens,
		augmented.Usage.CompletionTokens)
	fmt.Printf("\nresponse with PAS (first 200 chars):\n  %.200s\n", enhanced.Response)
}
