// Codingassistant shows PAS plugged in front of a coding workload — the
// dominant category of the paper's dataset (Figure 6). It trains PAS
// once, saves the model to disk, reloads it (the deployment path), and
// then augments a batch of coding prompts, printing what the judge thinks
// of the bare versus augmented responses.
//
//	go run ./examples/codingassistant
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pas "repro"
	"repro/internal/judge"
	"repro/internal/simllm"
)

var codingPrompts = []string{
	"Write a python function that implements an LRU cache.",
	"My golang code for a websocket server has a bug, help me debug it.",
	"Implement a bloom filter in rust and explain the algorithm.",
	"Write unit tests in python for a JSON parser.",
	"Refactor this javascript script that builds a trie to be faster.",
}

func main() {
	log.SetFlags(0)

	// Train once and persist — the model file is what a deployment ships.
	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 160
	built, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pas-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "pas-coding.json")
	if err := built.System.SaveModel(modelPath); err != nil {
		log.Fatal(err)
	}

	// Reload from disk, as a service would.
	system, err := pas.LoadSystem(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded PAS model (base %s) from %s\n\n", system.BaseModel(), modelPath)

	assistant := simllm.MustModel(simllm.GPT40613)
	j := judge.MustNew(judge.DefaultConfig())

	var bareTotal, augTotal float64
	for i, prompt := range codingPrompts {
		salt := fmt.Sprintf("code/%d", i)
		complement := system.Complement(prompt, salt)
		bare := assistant.Respond(prompt, simllm.Options{Salt: salt})
		augmented := assistant.Respond(system.Augment(prompt, salt), simllm.Options{Salt: salt})

		sb, sa := j.Score(prompt, bare), j.Score(prompt, augmented)
		bareTotal += sb
		augTotal += sa
		fmt.Printf("prompt %d: %s\n", i+1, prompt)
		fmt.Printf("  PAS adds: %s\n", complement)
		fmt.Printf("  judge: bare %.2f vs augmented %.2f\n\n", sb, sa)
	}
	fmt.Printf("mean judge score: bare %.2f, augmented %.2f\n",
		bareTotal/float64(len(codingPrompts)), augTotal/float64(len(codingPrompts)))
}
