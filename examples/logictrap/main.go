// Logictrap reproduces the paper's case study 1 (Figures 1 and 2): the
// "10 birds on a tree" trick question. Without PAS a weak model usually
// falls into the trap; PAS's complementary prompt warns it and the answer
// comes out right.
//
//	go run ./examples/logictrap
package main

import (
	"fmt"
	"log"

	pas "repro"
	"repro/internal/facet"
	"repro/internal/simllm"
)

const question = "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"

func main() {
	log.SetFlags(0)

	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	res, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	trap, ok := facet.FindTrap(question)
	if !ok {
		log.Fatal("trap not in the knowledge bank")
	}

	main := simllm.MustModel(simllm.GPT35Turbo) // low trap resistance
	fmt.Printf("question: %s\n\n", question)

	// Sample the model repeatedly with and without PAS and count how often
	// each condition states the right answer.
	const trials = 30
	var bareRight, pasRight int
	var lastBare, lastPAS, lastComplement string
	for i := 0; i < trials; i++ {
		salt := fmt.Sprintf("trial/%d", i)
		bare := main.Respond(question, simllm.Options{Salt: salt})
		if trap.ClaimsRight(bare) {
			bareRight++
		}
		enhanced, err := res.System.Enhance(main, question, salt)
		if err != nil {
			log.Fatal(err)
		}
		if trap.ClaimsRight(enhanced.Response) {
			pasRight++
		}
		lastBare, lastPAS, lastComplement = bare, enhanced.Response, enhanced.Complement
	}

	fmt.Printf("complementary prompt from PAS:\n  %s\n\n", lastComplement)
	fmt.Printf("sample response WITHOUT PAS:\n  %.200s\n\n", lastBare)
	fmt.Printf("sample response WITH PAS:\n  %.200s\n\n", lastPAS)
	fmt.Printf("correct answers over %d trials: without PAS %d/%d, with PAS %d/%d\n",
		trials, bareRight, trials, pasRight, trials)
	if pasRight <= bareRight {
		log.Fatal("unexpected: PAS did not improve trap handling")
	}
}
