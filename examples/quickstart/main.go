// Quickstart: build a small PAS system from scratch, augment a prompt,
// and run it through a downstream model — the whole plug-and-play loop of
// §3.4 in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pas "repro"
	"repro/internal/simllm"
)

func main() {
	log.SetFlags(0)

	// 1. Build PAS: synthetic corpus -> curation -> pair generation with
	//    selection/regeneration -> fine-tune Qwen2-7B. A small build takes
	//    a few seconds; paper scale uses pas.DefaultConfig() unchanged.
	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	fmt.Println("building PAS (corpus -> curation -> pairs -> SFT)...")
	res, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d generated pairs (curation kept %d of %d raw prompts)\n\n",
		res.Dataset.Len(), res.CurationStats.AfterFilter, res.CurationStats.Input)

	// 2. Augment a user prompt: PAS appends a complementary prompt, it
	//    never rewrites the user's words.
	prompt := "Does blood pressure increase or decrease when the body loses blood?"
	fmt.Printf("user prompt:\n  %s\n", prompt)
	fmt.Printf("complementary prompt:\n  %s\n\n", res.System.Complement(prompt, "demo"))

	// 3. Plug into any downstream LLM: r_e = LLM(cat(p, p_c)).
	for _, name := range []string{simllm.GPT4Turbo, simllm.GPT35Turbo} {
		main := simllm.MustModel(name)

		bare := main.Respond(prompt, simllm.Options{Salt: "demo"})
		enhanced, err := res.System.Enhance(main, prompt, "demo")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("without PAS (%d chars):\n  %.160s...\n", len(bare), bare)
		fmt.Printf("with PAS    (%d chars):\n  %.160s...\n\n", len(enhanced.Response), enhanced.Response)
	}
}
