package pas

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serving"
)

// AugmentRequest is the body of POST /v1/augment.
type AugmentRequest struct {
	// Prompt is the user prompt to complement. Required.
	Prompt string `json:"prompt"`
	// Salt optionally decorrelates repeated calls.
	Salt string `json:"salt,omitempty"`
}

// AugmentResponse is the reply of POST /v1/augment.
type AugmentResponse struct {
	// Prompt echoes the original prompt.
	Prompt string `json:"prompt"`
	// Complement is p_c = M_p(p).
	Complement string `json:"complement"`
	// Augmented is cat(p, p_c), ready to send to any LLM.
	Augmented string `json:"augmented"`
	// Model is the PAS base model name.
	Model string `json:"model"`
	// Degraded reports that the response is below full quality: the
	// augmentation path failed and the service fell back to the raw
	// prompt (ServingConfig.Degrade), or the brownout ladder served a
	// reduced rung (ServingConfig.Brownout).
	Degraded bool `json:"degraded,omitempty"`
	// DegradedLevel names the rung when Degraded: "trim" for the cheap
	// complement, "1" for raw passthrough (the legacy fail-open value).
	DegradedLevel string `json:"degraded_level,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// maxPromptBytes bounds request bodies; a prompt this size is abuse.
const maxPromptBytes = 1 << 20

// ServingConfig sizes the serving core enabled by EnableServing. It
// mirrors the internal serving package's configuration; zero values
// select defaults (see the flag docs in cmd/passerve).
type ServingConfig struct {
	// CacheSize is the result-cache capacity in entries; negative
	// disables caching, 0 defaults to 4096.
	CacheSize int
	// CacheTTL expires cached complements; 0 keeps them until evicted,
	// which is sound for a fixed deterministic model.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrent complement computations (default 64).
	MaxInFlight int
	// QueueDepth bounds requests waiting for a computation slot;
	// 0 sheds immediately when all slots are busy.
	QueueDepth int
	// QueueWait is the longest a request waits for a slot (default
	// 100ms); the request's context deadline tightens it.
	QueueWait time.Duration
	// Retries re-attempts a shed complement computation with
	// full-jitter backoff before giving up (or degrading); 0 disables
	// retrying. Open-breaker failures are never retried — the breaker
	// exists to stop exactly that traffic.
	Retries int
	// RetryBudget bounds the whole retry loop, sleeps included.
	// Default 500ms when Retries > 0.
	RetryBudget time.Duration
	// BreakerThreshold arms a circuit breaker over the augmentation
	// path: after that many consecutive shed computations the core
	// fails fast for BreakerCooldown, then probes once per half-open
	// window. 0 disables it.
	BreakerThreshold int
	// BreakerCooldown is the breaker's open→half-open window (default
	// 2s when armed).
	BreakerCooldown time.Duration
	// Degrade fails open: when the augmentation path sheds, times out,
	// or is open-circuited, context-taking entry points return the
	// un-augmented prompt instead of an error. The fallback is counted
	// in /v1/stats as "degraded" (and flagged X-PAS-Degraded by the
	// proxy), never silent. Sound for PAS because the complement only
	// ever adds guidance — the raw prompt is always a valid request.
	Degrade bool

	// AdaptiveLimit replaces the static in-flight cap with an AIMD
	// limit that climbs on fast completions and halves on deadline
	// misses and breaker trips; MaxInFlight becomes its ceiling.
	AdaptiveLimit bool
	// LimitFloor is the adaptive limit's lower clamp (default 1).
	LimitFloor int
	// LimitTarget is the latency below which a completion argues for
	// raising the adaptive limit (default 25ms).
	LimitTarget time.Duration

	// Brownout arms the degradation ladder: under queue pressure the
	// core steps full complement → cheap complement (trim) → raw
	// passthrough before it starts hard-shedding. Responses carry the
	// rung in X-PAS-Degraded ("trim", then "1").
	Brownout bool

	// TenantWeights biases the fair-share admission queue: a tenant
	// with weight 3 drains three requests per round for every one of a
	// weight-1 tenant. Unlisted tenants get DefaultTenantWeight.
	TenantWeights map[string]int
	// DefaultTenantWeight is the weight of unlisted tenants (default 1).
	DefaultTenantWeight int
	// TenantQuotas caps a tenant's concurrent computations; excess
	// requests queue behind the tenant's own traffic. 0 = no cap.
	TenantQuotas map[string]int
	// TenantQueueDepth caps each tenant's share of the waiting room.
	// 0 derives the cap from QueueDepth weighted by tenant weight.
	TenantQueueDepth int
	// MaxTenants bounds the tenant accounting table; ids beyond it
	// share one overflow queue (default 64).
	MaxTenants int

	// ComputeDelay pads every complement computation — an overload-
	// drill knob for load tests, never set in production.
	ComputeDelay time.Duration
}

// EnableServing puts the admission-controlled, deduplicating, cached
// serving core in front of Complement for every context-taking entry
// point: handleAugment, the reverse proxy, ComplementContext, and
// AugmentContext. Call it once before serving traffic; the plain
// Complement and Augment methods stay direct and unlimited.
func (s *System) EnableServing(cfg ServingConfig) error {
	if cfg.Retries < 0 {
		return fmt.Errorf("pas: Retries must be >= 0, got %d", cfg.Retries)
	}
	scfg := serving.Config{
		CacheSize:           cfg.CacheSize,
		CacheTTL:            cfg.CacheTTL,
		MaxInFlight:         cfg.MaxInFlight,
		QueueDepth:          cfg.QueueDepth,
		QueueWait:           cfg.QueueWait,
		BreakerThreshold:    cfg.BreakerThreshold,
		BreakerCooldown:     cfg.BreakerCooldown,
		AdaptiveLimit:       cfg.AdaptiveLimit,
		LimitFloor:          cfg.LimitFloor,
		LimitTarget:         cfg.LimitTarget,
		Brownout:            cfg.Brownout,
		TenantWeights:       cfg.TenantWeights,
		DefaultTenantWeight: cfg.DefaultTenantWeight,
		TenantQuotas:        cfg.TenantQuotas,
		TenantQueueDepth:    cfg.TenantQueueDepth,
		MaxTenants:          cfg.MaxTenants,
		ComputeDelay:        cfg.ComputeDelay,
	}
	if cfg.Brownout {
		scfg.CheapFn = s.ComplementCheap
	}
	core, err := serving.New(s.Complement, scfg)
	if err != nil {
		return err
	}
	s.core = core
	s.degrade = cfg.Degrade
	s.retries = cfg.Retries
	if cfg.Retries > 0 {
		budget := cfg.RetryBudget
		if budget == 0 {
			budget = 500 * time.Millisecond
		}
		s.retry = resilience.Policy{
			MaxAttempts: cfg.Retries + 1,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			Budget:      budget,
		}
	}
	return nil
}

// ComplementContext is Complement through the serving core when one is
// enabled: results are cached, concurrent identical requests share one
// computation, shed computations are retried per ServingConfig.Retries,
// and persistent overload fails with an error for which
// IsOverloaded(err) is true. Without EnableServing it computes
// directly and never fails.
func (s *System) ComplementContext(ctx context.Context, prompt, salt string) (string, error) {
	c, _, err := s.complementLevel(ctx, prompt, salt)
	return c, err
}

// complementLevel is ComplementContext plus the brownout rung the core
// chose. A trim-level result is the cheap complement; a raw-level
// result is an empty complement with no error — the caller proceeds
// with the un-augmented prompt.
func (s *System) complementLevel(ctx context.Context, prompt, salt string) (string, serving.Level, error) {
	if s.core == nil {
		return s.Complement(prompt, salt), serving.LevelFull, nil
	}
	var level serving.Level
	do := func(ctx context.Context) (string, error) {
		v, lvl, err := s.core.DoLevel(ctx, prompt, salt, s.BaseModel())
		level = lvl
		if errors.Is(err, serving.ErrBreakerOpen) || errors.Is(err, serving.ErrDraining) {
			// Retrying against an open breaker (or a draining core —
			// drain is one-way) only burns the backoff budget; mark
			// these terminal for the retry loop. IsOverloaded still sees
			// the typed error through the wrapper.
			return v, resilience.AsTerminal(err)
		}
		return v, err
	}
	if s.retries == 0 {
		v, err := do(ctx)
		return v, level, err
	}
	v, err := resilience.DoValue(ctx, s.retry, do)
	return v, level, err
}

// complementOrDegrade runs the complement through the serving layers
// and applies the fail-open policy: when the PAS side sheds and Degrade
// is enabled, the caller proceeds with an empty complement (the raw
// prompt), and the fallback is counted in the core's stats. Drain sheds
// are the one overload that never degrades: a draining replica must
// answer 503 so its router fails the request over to a peer, instead of
// fail-open 200s keeping traffic pinned to a process on its way out.
// With Brownout armed the core may also answer below full quality
// without any failure; the returned level carries the rung (raw-level
// results report degraded with the complement empty, mirroring the
// fail-open shape).
func (s *System) complementOrDegrade(ctx context.Context, prompt, salt string) (complement string, level serving.Level, degraded bool, err error) {
	c, level, err := s.complementLevel(ctx, prompt, salt)
	if err == nil {
		return c, level, level != serving.LevelFull, nil
	}
	if s.degrade && IsOverloaded(err) && !IsDraining(err) {
		s.core.NoteDegraded()
		obs.AddEvent(ctx, "augment.degraded", "cause", err.Error())
		return "", serving.LevelRaw, true, nil
	}
	return "", serving.LevelFull, false, err
}

// RegisterMetrics exposes the serving core's counters on reg (see
// serving.Core.RegisterMetrics). Without EnableServing it registers
// nothing — there is no core to observe.
func (s *System) RegisterMetrics(reg *obs.Registry) {
	if s.core != nil {
		s.core.RegisterMetrics(reg)
	}
}

// AugmentContext is Augment through the serving core; see
// ComplementContext. With ServingConfig.Degrade enabled, a PAS-side
// failure returns the un-augmented prompt and a nil error — augmenting
// is an enhancement, not a dependency.
func (s *System) AugmentContext(ctx context.Context, prompt, salt string) (string, error) {
	aug, _, err := s.AugmentContextDegraded(ctx, prompt, salt)
	return aug, err
}

// AugmentContextDegraded is AugmentContext plus the degradation
// verdict, for callers (the proxy, the augment handler) that must
// surface fail-open fallbacks instead of hiding them.
func (s *System) AugmentContextDegraded(ctx context.Context, prompt, salt string) (augmented string, degraded bool, err error) {
	aug, level, err := s.AugmentContextLevel(ctx, prompt, salt)
	return aug, level != "", err
}

// AugmentContextLevel is AugmentContextDegraded with the degradation
// rung as its X-PAS-Degraded wire value: "" full quality, "trim" the
// brownout ladder's cheap complement, "1" raw passthrough (fail-open
// fallback or the ladder's last rung before shedding).
func (s *System) AugmentContextLevel(ctx context.Context, prompt, salt string) (augmented, level string, err error) {
	c, lvl, _, err := s.complementOrDegrade(ctx, prompt, salt)
	if err != nil {
		return "", "", err
	}
	if c == "" {
		return prompt, lvl.Header(), nil
	}
	return prompt + "\n" + c, lvl.Header(), nil
}

// IsOverloaded reports whether err from a context-taking entry point
// means the serving core shed the request; callers should answer 503
// and retry later.
func IsOverloaded(err error) bool { return serving.Overloaded(err) }

// IsDraining reports whether err means this instance is draining for
// shutdown. Draining errors are Overloaded too (503 + Retry-After),
// but they must never be served fail-open: the 503 is the signal that
// moves routers off this instance.
func IsDraining(err error) bool { return errors.Is(err, serving.ErrDraining) }

// Drain flips the system into draining for a zero-downtime shutdown:
// GET /v1/status starts answering "draining" (still 200 — the process
// is healthy, just leaving), new augmentation work is shed with
// 503 + Retry-After, and in-flight plus cache-hit traffic keeps being
// served. Cluster routers (internal/ring) treat the draining status as
// routing-excluded-but-healthy, so the instance leaves the ring without
// tripping breakers or suspicion. Returns true on the first call.
// Draining is one-way: a restarted process starts fresh.
func (s *System) Drain() bool {
	first := s.draining.CompareAndSwap(false, true)
	if first && s.core != nil {
		s.core.Drain()
	}
	return first
}

// Draining reports whether Drain has been called.
func (s *System) Draining() bool { return s.draining.Load() }

// Quiesce blocks until the serving core is idle (no computation running
// or queued) or ctx ends. Call it between Drain and closing the
// listener: with new work shed, the queue can only empty. A system
// without a serving core is trivially quiesced.
func (s *System) Quiesce(ctx context.Context) error {
	if s.core == nil {
		return nil
	}
	return s.core.Quiesce(ctx)
}

// SetAdminToken guards POST /v1/drain: when non-empty, requests must
// present the token in X-PAS-Admin-Token or Authorization: Bearer.
// Set it before serving traffic; it is not safe to change while
// requests are in flight.
func (s *System) SetAdminToken(token string) { s.adminToken = token }

// OnDrain registers fn to run (at most once, from a request goroutine)
// when an HTTP drain request asks the process to exit — cmd/passerve
// hooks its signal-equivalent shutdown path here. Register before
// serving traffic.
func (s *System) OnDrain(fn func()) { s.onDrain = fn }

// fireDrainExit invokes the registered exit hook exactly once.
func (s *System) fireDrainExit() {
	s.drainExit.Do(func() {
		if s.onDrain != nil {
			s.onDrain()
		}
	})
}

// adminAuthorized checks the drain/admin token. An unset token leaves
// the endpoint open (single-node dev flows); production runs set
// -admin-token.
func (s *System) adminAuthorized(r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got := r.Header.Get("X-PAS-Admin-Token")
	if got == "" {
		got = strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(s.adminToken)) == 1
}

// Handler returns the HTTP handler exposing the system as a
// plug-and-play service:
//
//	POST /v1/augment {"prompt": "..."} -> AugmentResponse
//	GET  /v1/stats                     -> serving-core snapshot (enabled cores)
//	GET  /v1/status                    -> {"status":"ok"|"draining","model":...} (ring health probes)
//	POST /v1/drain  [{"exit": bool}]   -> graceful drain (admin; see Drain)
//	GET  /healthz                      -> 200 "ok"
//
// The handler is safe for concurrent use.
func (s *System) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", s.handleAugment)
	mux.Handle("/v1/stats", s.StatsHandler())
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/drain", s.handleDrain)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleStatus is the liveness probe the cluster membership table polls
// (ring.HealthConfig.ProbePath). The status code stays 200 even while
// draining — a draining process is healthy, just leaving — and the body
// status field carries the routing verdict: probers (internal/ring)
// parse "draining" as routing-excluded-but-healthy, anything else 2xx
// as "route to me". It is deliberately cheap — no serving-core
// counters, no locks — because a fleet of probers hits it continuously.
func (s *System) handleStatus(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	// The brownout rung rides along (one mutex read, still cheap) so
	// ring routers can steer hedges away from a browned-out replica
	// before sending it more work.
	pressure := ""
	if s.core != nil {
		pressure = s.core.PressureLevel().String()
		if pressure == "full" {
			pressure = ""
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Model    string `json:"model"`
		Pressure string `json:"pressure,omitempty"`
	}{Status: status, Model: s.BaseModel(), Pressure: pressure})
}

// handleDrain is the admin half of a rolling restart: it flips the
// system into draining (idempotently) and, unless the body says
// {"exit": false}, asks the process to begin its graceful exit via the
// OnDrain hook. Guarded by the admin token when one is set.
func (s *System) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.adminAuthorized(r) {
		writeJSON(w, http.StatusForbidden, errorResponse{Error: "admin token missing or wrong (X-PAS-Admin-Token or Authorization: Bearer)"})
		return
	}
	// The body is optional; an empty one means "drain and exit" — the
	// rolling-restart default. {"exit": false} flips the status without
	// scheduling an exit, for operators who kill the process themselves.
	req := struct {
		Exit *bool `json:"exit"`
	}{}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	exit := req.Exit == nil || *req.Exit
	first := s.Drain()
	if exit {
		s.fireDrainExit()
	}
	writeJSON(w, http.StatusOK, struct {
		Status          string `json:"status"`
		AlreadyDraining bool   `json:"already_draining,omitempty"`
		Exiting         bool   `json:"exiting"`
	}{Status: "draining", AlreadyDraining: !first, Exiting: exit && s.onDrain != nil})
}

// StatsHandler serves the serving core's snapshot as JSON (mount at
// GET /v1/stats). Without EnableServing it answers 404 so monitoring
// can tell "core disabled" apart from "all counters zero".
func (s *System) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.core == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "serving core disabled; start with EnableServing"})
			return
		}
		s.core.StatsHandler().ServeHTTP(w, r)
	})
}

func (s *System) handleAugment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	var req AugmentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPromptBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "prompt is required"})
		return
	}
	// With a serving core the drain gate lives inside it (cache hits
	// still answer); without one, shed here so a bare System still
	// honors the drain protocol.
	if s.core == nil && s.Draining() {
		s.writeOverloaded(w, serving.ErrDraining)
		return
	}
	c, level, degraded, err := s.complementOrDegrade(r.Context(), req.Prompt, req.Salt)
	if err != nil {
		s.writeOverloaded(w, err)
		return
	}
	resp := AugmentResponse{
		Prompt:     req.Prompt,
		Complement: c,
		Augmented:  req.Prompt + "\n" + c,
		Model:      s.BaseModel(),
		Degraded:   degraded,
	}
	if degraded {
		if c == "" {
			resp.Augmented = req.Prompt
		}
		resp.DegradedLevel = level.Header()
		w.Header().Set("X-PAS-Degraded", level.Header())
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeOverloaded answers a shed (or client-abandoned) request. Loaded
// sheds carry Retry-After priced from the core's observed queue-drain
// rate — the backlog divided by the admission limit, times the service
// EWMA — so well-behaved clients back off for roughly as long as the
// congestion will actually last; drain sheds carry it so routers retry
// elsewhere immediately.
func (s *System) writeOverloaded(w http.ResponseWriter, err error) {
	if serving.Overloaded(err) {
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
	}
	prefix := "server overloaded: "
	if IsDraining(err) {
		prefix = "shutting down: "
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: prefix + err.Error()})
}

// RetryAfterHint is the congestion-priced Retry-After in whole seconds
// — the core's queue-drain estimate, or 1 when serving is not enabled.
// Outer backpressure layers (httpmw.ConcurrencyLimitHint) use it so
// their refusals carry the same advice as the core's own sheds.
func (s *System) RetryAfterHint() int {
	if s.core != nil {
		return s.core.RetryAfter()
	}
	return 1
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pas: writing response: %v", err)
	}
}

// ServeContext runs the plug-and-play HTTP service on addr until the
// server fails or ctx is cancelled, then drains in-flight requests via
// http.Server.Shutdown (bounded at 10s). It returns nil after a clean
// shutdown.
func (s *System) ServeContext(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// The parent context is already cancelled; detach from its
		// cancellation (keeping its values) so shutdown still gets its
		// drain window instead of aborting immediately.
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

// Serve runs the service until the server fails. It is a thin wrapper
// over ServeContext for cmd/passerve; libraries should mount Handler
// on their own server for timeout and shutdown control.
func (s *System) Serve(addr string) error {
	return s.ServeContext(context.Background(), addr)
}
