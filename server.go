package pas

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"
)

// AugmentRequest is the body of POST /v1/augment.
type AugmentRequest struct {
	// Prompt is the user prompt to complement. Required.
	Prompt string `json:"prompt"`
	// Salt optionally decorrelates repeated calls.
	Salt string `json:"salt,omitempty"`
}

// AugmentResponse is the reply of POST /v1/augment.
type AugmentResponse struct {
	// Prompt echoes the original prompt.
	Prompt string `json:"prompt"`
	// Complement is p_c = M_p(p).
	Complement string `json:"complement"`
	// Augmented is cat(p, p_c), ready to send to any LLM.
	Augmented string `json:"augmented"`
	// Model is the PAS base model name.
	Model string `json:"model"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// maxPromptBytes bounds request bodies; a prompt this size is abuse.
const maxPromptBytes = 1 << 20

// Handler returns the HTTP handler exposing the system as a
// plug-and-play service:
//
//	POST /v1/augment {"prompt": "..."} -> AugmentResponse
//	GET  /healthz                      -> 200 "ok"
//
// The handler is safe for concurrent use.
func (s *System) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", s.handleAugment)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *System) handleAugment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	var req AugmentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPromptBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "prompt is required"})
		return
	}
	c := s.Complement(req.Prompt, req.Salt)
	writeJSON(w, http.StatusOK, AugmentResponse{
		Prompt:     req.Prompt,
		Complement: c,
		Augmented:  req.Prompt + "\n" + c,
		Model:      s.BaseModel(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pas: writing response: %v", err)
	}
}

// Serve runs the plug-and-play HTTP service on addr until the server
// fails. It is a convenience for cmd/passerve; libraries should mount
// Handler on their own server for timeout and shutdown control.
func (s *System) Serve(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	return srv.ListenAndServe()
}
