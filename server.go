package pas

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/serving"
)

// AugmentRequest is the body of POST /v1/augment.
type AugmentRequest struct {
	// Prompt is the user prompt to complement. Required.
	Prompt string `json:"prompt"`
	// Salt optionally decorrelates repeated calls.
	Salt string `json:"salt,omitempty"`
}

// AugmentResponse is the reply of POST /v1/augment.
type AugmentResponse struct {
	// Prompt echoes the original prompt.
	Prompt string `json:"prompt"`
	// Complement is p_c = M_p(p).
	Complement string `json:"complement"`
	// Augmented is cat(p, p_c), ready to send to any LLM.
	Augmented string `json:"augmented"`
	// Model is the PAS base model name.
	Model string `json:"model"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// maxPromptBytes bounds request bodies; a prompt this size is abuse.
const maxPromptBytes = 1 << 20

// ServingConfig sizes the serving core enabled by EnableServing. It
// mirrors the internal serving package's configuration; zero values
// select defaults (see the flag docs in cmd/passerve).
type ServingConfig struct {
	// CacheSize is the result-cache capacity in entries; negative
	// disables caching, 0 defaults to 4096.
	CacheSize int
	// CacheTTL expires cached complements; 0 keeps them until evicted,
	// which is sound for a fixed deterministic model.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrent complement computations (default 64).
	MaxInFlight int
	// QueueDepth bounds requests waiting for a computation slot;
	// 0 sheds immediately when all slots are busy.
	QueueDepth int
	// QueueWait is the longest a request waits for a slot (default
	// 100ms); the request's context deadline tightens it.
	QueueWait time.Duration
}

// EnableServing puts the admission-controlled, deduplicating, cached
// serving core in front of Complement for every context-taking entry
// point: handleAugment, the reverse proxy, ComplementContext, and
// AugmentContext. Call it once before serving traffic; the plain
// Complement and Augment methods stay direct and unlimited.
func (s *System) EnableServing(cfg ServingConfig) error {
	core, err := serving.New(s.Complement, serving.Config{
		CacheSize:   cfg.CacheSize,
		CacheTTL:    cfg.CacheTTL,
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		QueueWait:   cfg.QueueWait,
	})
	if err != nil {
		return err
	}
	s.core = core
	return nil
}

// ComplementContext is Complement through the serving core when one is
// enabled: results are cached, concurrent identical requests share one
// computation, and overload sheds with an error for which
// IsOverloaded(err) is true. Without EnableServing it computes
// directly and never fails.
func (s *System) ComplementContext(ctx context.Context, prompt, salt string) (string, error) {
	if s.core == nil {
		return s.Complement(prompt, salt), nil
	}
	return s.core.Do(ctx, prompt, salt, s.BaseModel())
}

// AugmentContext is Augment through the serving core; see
// ComplementContext.
func (s *System) AugmentContext(ctx context.Context, prompt, salt string) (string, error) {
	c, err := s.ComplementContext(ctx, prompt, salt)
	if err != nil {
		return "", err
	}
	if c == "" {
		return prompt, nil
	}
	return prompt + "\n" + c, nil
}

// IsOverloaded reports whether err from a context-taking entry point
// means the serving core shed the request; callers should answer 503
// and retry later.
func IsOverloaded(err error) bool { return serving.Overloaded(err) }

// Handler returns the HTTP handler exposing the system as a
// plug-and-play service:
//
//	POST /v1/augment {"prompt": "..."} -> AugmentResponse
//	GET  /v1/stats                     -> serving-core snapshot (enabled cores)
//	GET  /healthz                      -> 200 "ok"
//
// The handler is safe for concurrent use.
func (s *System) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", s.handleAugment)
	mux.Handle("/v1/stats", s.StatsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// StatsHandler serves the serving core's snapshot as JSON (mount at
// GET /v1/stats). Without EnableServing it answers 404 so monitoring
// can tell "core disabled" apart from "all counters zero".
func (s *System) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.core == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "serving core disabled; start with EnableServing"})
			return
		}
		s.core.StatsHandler().ServeHTTP(w, r)
	})
}

func (s *System) handleAugment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	var req AugmentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPromptBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "prompt is required"})
		return
	}
	c, err := s.ComplementContext(r.Context(), req.Prompt, req.Salt)
	if err != nil {
		writeOverloaded(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AugmentResponse{
		Prompt:     req.Prompt,
		Complement: c,
		Augmented:  req.Prompt + "\n" + c,
		Model:      s.BaseModel(),
	})
}

// writeOverloaded answers a shed (or client-abandoned) request. Loaded
// sheds carry Retry-After so well-behaved clients back off instead of
// hammering a saturated core.
func writeOverloaded(w http.ResponseWriter, err error) {
	if serving.Overloaded(err) {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server overloaded: " + err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pas: writing response: %v", err)
	}
}

// ServeContext runs the plug-and-play HTTP service on addr until the
// server fails or ctx is cancelled, then drains in-flight requests via
// http.Server.Shutdown (bounded at 10s). It returns nil after a clean
// shutdown.
func (s *System) ServeContext(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

// Serve runs the service until the server fails. It is a thin wrapper
// over ServeContext for cmd/passerve; libraries should mount Handler
// on their own server for timeout and shutdown control.
func (s *System) Serve(addr string) error {
	return s.ServeContext(context.Background(), addr)
}
