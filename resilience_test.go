package pas

// Degradation and fault-injection tests for the public surface: the
// acceptance bar is that with the augmentation side scripted to fail,
// the proxy and the augment handler keep answering 200 with the raw
// prompt (zero PAS-attributable 5xx), and every fallback is visible in
// /v1/stats and the X-PAS-Degraded header.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/serving"
	"repro/internal/simllm"
)

// degradedSystem builds a fail-open system whose serving core has one
// computation slot, no queue, and a complement function that can be
// parked on demand: send a "block" prompt, receive on entered, and the
// next real request is guaranteed to shed.
func degradedSystem(t *testing.T) (sys *System, entered chan struct{}, release chan struct{}) {
	t.Helper()
	sys = NewSystem(testSystem(t).System.model)
	if err := sys.EnableServing(ServingConfig{Degrade: true}); err != nil {
		t.Fatal(err)
	}
	entered = make(chan struct{})
	release = make(chan struct{})
	core, err := serving.New(func(prompt, salt string) string {
		if prompt == "block" {
			entered <- struct{}{}
			<-release
		}
		return sys.Complement(prompt, salt)
	}, serving.Config{CacheSize: -1, MaxInFlight: 1, QueueDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	sys.core = core
	return sys, entered, release
}

// occupySlot parks the single computation slot and returns the cleanup
// that releases it and waits for the parked request to finish.
func occupySlot(t *testing.T, sys *System, entered, release chan struct{}) func() {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := sys.ComplementContext(context.Background(), "block", "")
		done <- err
	}()
	<-entered
	return func() {
		close(release)
		if err := <-done; err != nil {
			t.Errorf("parked request failed: %v", err)
		}
	}
}

// TestProxyDegradesToRawPromptNot503 is the acceptance scenario: the
// augmentation path is saturated, yet the proxied chat request comes
// back 200 with the un-augmented prompt forwarded upstream, the
// response is flagged X-PAS-Degraded, and /v1/stats counts the
// fallback. No PAS-side failure becomes a user-visible 5xx.
func TestProxyDegradesToRawPromptNot503(t *testing.T) {
	sys, entered, release := degradedSystem(t)
	upstream, bodies := captureUpstream(t)
	proxy, err := NewProxy(sys, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	free := occupySlot(t, sys, entered, release)
	defer free()

	const prompt = "Explain how tides form."
	sent := `{"model":"m","messages":[{"role":"user","content":"` + prompt + `"}]}`
	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (augmentation failure must not be user-visible)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-PAS-Degraded"); got != "1" {
		t.Fatalf("X-PAS-Degraded = %q, want 1 — degradation must never be silent", got)
	}
	if len(*bodies) != 1 {
		t.Fatalf("upstream saw %d bodies, want 1", len(*bodies))
	}
	var fwd chatPayload
	if err := json.Unmarshal((*bodies)[0], &fwd); err != nil {
		t.Fatal(err)
	}
	if fwd.Messages[0].Content != prompt {
		t.Fatalf("upstream saw %q, want the raw prompt %q", fwd.Messages[0].Content, prompt)
	}
	st := sys.core.Stats()
	if st.Degraded != 1 || st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v, want degraded=1 matching shed_queue_full=1", st)
	}
}

// TestAugmentHandlerDegrades: same policy on POST /v1/augment — 200,
// augmented == prompt, degraded flagged in body, header, and stats.
func TestAugmentHandlerDegrades(t *testing.T) {
	sys, entered, release := degradedSystem(t)
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()

	free := occupySlot(t, sys, entered, release)
	defer free()

	resp, err := srv.Client().Post(srv.URL+"/v1/augment", "application/json",
		strings.NewReader(`{"prompt":"Explain how tides form."}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-PAS-Degraded") != "1" {
		t.Fatal("missing X-PAS-Degraded header")
	}
	var ar AugmentResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Degraded || ar.Complement != "" || ar.Augmented != ar.Prompt {
		t.Fatalf("degraded response = %+v, want augmented == raw prompt", ar)
	}
	if got := sys.core.Stats().Degraded; got != 1 {
		t.Fatalf("stats degraded = %d, want 1", got)
	}
}

// TestProxyFailClosedWithoutDegrade: with Degrade off the old contract
// holds — a shed augmentation is a 503 + Retry-After, not silent
// un-augmented forwarding.
func TestProxyFailClosedWithoutDegrade(t *testing.T) {
	sys, entered, release := degradedSystem(t)
	sys.degrade = false
	upstream, bodies := captureUpstream(t)
	proxy, err := NewProxy(sys, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	free := occupySlot(t, sys, entered, release)
	defer free()

	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json",
		strings.NewReader(`{"model":"m","messages":[{"role":"user","content":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 when fail-closed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	if len(*bodies) != 0 {
		t.Fatal("fail-closed request must not reach the upstream")
	}
}

// TestProxyPassesUpstream4xxVerbatim: an upstream that answers 400
// reaches the client as that 400 with its exact body — the proxy never
// rewrites upstream verdicts into its own 502.
func TestProxyPassesUpstream4xxVerbatim(t *testing.T) {
	const body = `{"error":{"message":"model not found","type":"invalid_request_error"}}`
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, body)
	}))
	defer upstream.Close()
	proxy, err := NewProxy(testSystem(t).System, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	resp, err := front.Client().Post(front.URL+"/v1/chat/completions", "application/json",
		strings.NewReader(`{"model":"nope","messages":[{"role":"user","content":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want upstream's 400 verbatim", resp.StatusCode)
	}
	if string(got) != body {
		t.Fatalf("body = %q, want upstream's %q", got, body)
	}
}

// TestProxyUnreachableUpstreamIsJSON502: a transport-level failure (no
// upstream at all) is the one case the proxy answers itself, and it
// does so with the JSON error envelope API clients expect.
func TestProxyUnreachableUpstreamIsJSON502(t *testing.T) {
	proxy, err := NewProxy(testSystem(t).System, "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	var envelope struct {
		Error struct {
			Type string `json:"type"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Type != "upstream_unreachable" {
		t.Fatalf("body = %q, want JSON envelope with type upstream_unreachable", body)
	}
}

// TestEnhanceContextDegrades: the library path mirrors the HTTP one —
// the downstream model is still called, with the raw prompt, and the
// result says so.
func TestEnhanceContextDegrades(t *testing.T) {
	sys, entered, release := degradedSystem(t)
	free := occupySlot(t, sys, entered, release)
	defer free()

	main := simllm.MustModel(simllm.GPT40613)
	const prompt = "Give me advice on keeping houseplants alive."
	out, err := sys.EnhanceContext(context.Background(), main, prompt, "e")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Complement != "" {
		t.Fatalf("out = %+v, want degraded with empty complement", out)
	}
	// The degraded response is exactly the raw-prompt response.
	raw, err := main.Chat([]simllm.Message{{Role: "user", Content: prompt}}, simllm.Options{Salt: "e"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Response != raw {
		t.Fatalf("degraded response differs from raw-prompt response")
	}
	if got := sys.core.Stats().Degraded; got != 1 {
		t.Fatalf("stats degraded = %d, want 1", got)
	}
}

// TestEnhanceMainModelErrorPropagates: degradation covers PAS-side
// failures only; the downstream model's own errors are the caller's to
// see, scripted here with a FaultyChatter.
func TestEnhanceMainModelErrorPropagates(t *testing.T) {
	sys := testSystem(t).System
	boom := errors.New("backend down")
	main := resilience.NewFaultyChatter(simllm.MustModel(simllm.GPT40613), resilience.Fault{Err: boom})
	if _, err := sys.Enhance(main, "x", "s"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the scripted backend error", err)
	}
	// Script exhausted: the next call passes through to the real model.
	out, err := sys.Enhance(main, "Explain how tides form.", "s")
	if err != nil || out.Response == "" {
		t.Fatalf("post-script call = (%+v, %v), want clean passthrough", out, err)
	}
	if main.Calls() != 2 {
		t.Fatalf("calls = %d, want 2", main.Calls())
	}
}

// TestEnhanceContextDeadlineCutsFaultDelay: AsChatterCtx must pick the
// FaultyChatter's native ChatContext, so a scripted 1s stall loses to a
// 30ms deadline instead of being slept in full.
func TestEnhanceContextDeadlineCutsFaultDelay(t *testing.T) {
	sys := testSystem(t).System
	main := resilience.NewFaultyChatter(simllm.MustModel(simllm.GPT40613), resilience.Fault{Delay: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sys.EnhanceContext(ctx, main, "x", "s")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline took %v to cut a scripted 1s stall", elapsed)
	}
}
