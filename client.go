package pas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a remote PAS service (see System.Handler). It is how a
// third-party application plugs PAS in front of its own LLM calls.
type Client struct {
	baseURL string
	http    *http.Client
}

// NewClient creates a client for the PAS service at baseURL
// (e.g. "http://localhost:8422").
func NewClient(baseURL string) (*Client, error) {
	trimmed := strings.TrimRight(baseURL, "/")
	if trimmed == "" {
		return nil, fmt.Errorf("pas: empty base URL")
	}
	return &Client{
		baseURL: trimmed,
		http:    &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// Augment requests a complementary prompt for the given user prompt.
func (c *Client) Augment(prompt, salt string) (AugmentResponse, error) {
	body, err := json.Marshal(AugmentRequest{Prompt: prompt, Salt: salt})
	if err != nil {
		return AugmentResponse{}, fmt.Errorf("pas: encoding request: %w", err)
	}
	resp, err := c.http.Post(c.baseURL+"/v1/augment", "application/json", bytes.NewReader(body))
	if err != nil {
		return AugmentResponse{}, fmt.Errorf("pas: calling service: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPromptBytes*2))
	if err != nil {
		return AugmentResponse{}, fmt.Errorf("pas: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return AugmentResponse{}, fmt.Errorf("pas: service error (%d): %s", resp.StatusCode, e.Error)
		}
		return AugmentResponse{}, fmt.Errorf("pas: service error: status %d", resp.StatusCode)
	}
	var out AugmentResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return AugmentResponse{}, fmt.Errorf("pas: decoding response: %w", err)
	}
	return out, nil
}

// Healthy reports whether the service responds on /healthz.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.baseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse; health is the status code
	return resp.StatusCode == http.StatusOK
}
