// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the design-choice ablations listed in DESIGN.md
// §5. Each experiment benchmark prints its table once, so
//
//	go test -bench=. -benchmem
//
// regenerates every reported artefact at reduced (smoke) scale; use
// cmd/paseval for paper-scale runs.
package pas_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/augment"
	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/evalbench"
	"repro/internal/facet"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/simllm"
)

// Shared artifacts: Prepare is the dominant cost, so every experiment
// benchmark reuses one quick-scale build.
var (
	benchOnce sync.Once
	benchArt  *evalbench.Artifacts
	benchErr  error
)

func benchArtifacts(b *testing.B) *evalbench.Artifacts {
	b.Helper()
	benchOnce.Do(func() {
		benchArt, benchErr = evalbench.Prepare(evalbench.QuickOptions())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchArt
}

var printOnce sync.Map

func printFirst(b *testing.B, key, out string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", out)
	}
}

// BenchmarkTable1 regenerates Table 1: PAS vs BPO vs no APE across the
// six main models on Arena-Hard and AlpacaEval 2.0 (+LC).
func BenchmarkTable1(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table1", rep.String())
	}
}

// BenchmarkTable2 regenerates Table 2: PAS and BPO on the same
// LLaMA-2-7B base.
func BenchmarkTable2(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.Table2()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table2", rep.String())
	}
}

// BenchmarkTable3 regenerates Table 3: the flexibility matrix.
func BenchmarkTable3(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		printFirst(b, "table3", art.Table3().String())
	}
}

// BenchmarkTable4 regenerates Table 4 and Figure 1(b): the human
// evaluation with the simulated rater pool.
func BenchmarkTable4(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.HumanStudy()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table4", rep.String())
	}
}

// BenchmarkFigure1 is the GSB half of the human study; it shares the
// Table 4 computation and reports the per-category win rates.
func BenchmarkFigure1(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.HumanStudy()
		if err != nil {
			b.Fatal(err)
		}
		var g humanGSB
		for _, c := range rep.Categories {
			g.good += c.GSB.Good
			g.same += c.GSB.Same
			g.bad += c.GSB.Bad
		}
		printFirst(b, "fig1", fmt.Sprintf("Figure 1(b) totals: good %d, same %d, bad %d", g.good, g.same, g.bad))
	}
}

type humanGSB struct{ good, same, bad int }

// BenchmarkTable5 regenerates Table 5: the selection/regeneration
// ablation.
func BenchmarkTable5(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.Table5()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table5", rep.String())
	}
}

// BenchmarkFigure6 regenerates Figure 6: the dataset category
// distribution.
func BenchmarkFigure6(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		printFirst(b, "fig6", art.Figure6().String())
	}
}

// BenchmarkFigure7 regenerates Figure 7: the data-efficiency comparison.
func BenchmarkFigure7(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig7", rep.String())
	}
}

// BenchmarkCaseStudies reruns the §4.6 case studies.
func BenchmarkCaseStudies(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cases, err := art.CaseStudies()
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "cases", evalbench.RenderCases(cases))
	}
}

// ---------------------------------------------------------------------
// Design-choice ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

func dedupVectors(b *testing.B, n int) []embed.Vector {
	b.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = n
	pool, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, len(pool))
	for i, p := range pool {
		texts[i] = p.Text
	}
	enc := embed.MustNew(embed.DefaultConfig())
	if err := enc.Fit(texts); err != nil {
		b.Fatal(err)
	}
	return enc.EncodeBatch(texts)
}

// BenchmarkDedupHNSWvsExact compares the HNSW-backed dedup against the
// brute-force oracle — the speed/recall trade-off that justifies HNSW in
// the §3.1 pipeline.
func BenchmarkDedupHNSWvsExact(b *testing.B) {
	vecs := dedupVectors(b, 2000)
	b.Run("hnsw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.NearDuplicates(vecs, cluster.DefaultDedupConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.NearDuplicatesExact(vecs, 0.92); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchCurated(b *testing.B, n int) []curation.Curated {
	b.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = n * 2
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]curation.Curated, 0, n)
	for _, p := range pool {
		if len(out) == n {
			break
		}
		out = append(out, curation.Curated{Prompt: p, Category: p.Truth.Category, Score: 7})
	}
	return out
}

// BenchmarkRegenCap sweeps the regeneration attempt budget and reports
// the residual bad-pair rate — Algorithm 1 loops until correct; this
// shows where the loop's value saturates.
func BenchmarkRegenCap(b *testing.B) {
	cur := benchCurated(b, 300)
	golden := dataset.Golden()
	for _, cap := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("maxregen=%d", cap), func(b *testing.B) {
			var residual int
			for i := 0; i < b.N; i++ {
				cfg := augment.DefaultConfig()
				cfg.MaxRegen = cap
				res, err := augment.Run(cur, golden, cfg)
				if err != nil {
					b.Fatal(err)
				}
				residual = res.Stats.ResidualDefects
			}
			b.ReportMetric(float64(residual)/300, "residual-defects/pair")
		})
	}
}

// BenchmarkGoldenSize sweeps the number of golden few-shot examples per
// category (the paper uses 4-5) and reports the pre-selection defect
// rate of raw generation.
func BenchmarkGoldenSize(b *testing.B) {
	cur := benchCurated(b, 300)
	full := dataset.Golden()
	for _, size := range []int{1, 4, 5} {
		b.Run(fmt.Sprintf("golden=%d", size), func(b *testing.B) {
			golden := make(map[facet.Category][]dataset.Pair, len(full))
			for c, pairs := range full {
				if len(pairs) > size {
					pairs = pairs[:size]
				}
				golden[c] = pairs
			}
			var residual int
			for i := 0; i < b.N; i++ {
				cfg := augment.DefaultConfig()
				cfg.Selection = false // measure raw generation quality
				res, err := augment.Run(cur, golden, cfg)
				if err != nil {
					b.Fatal(err)
				}
				residual = res.Stats.ResidualDefects
			}
			b.ReportMetric(float64(residual)/300, "raw-defects/pair")
		})
	}
}

// BenchmarkLCCorrection shows why AlpacaEval 2.0 has an LC variant: with
// a length-biased judge, padding a response shifts the raw win
// probability but the length-controlled estimate stays put.
func BenchmarkLCCorrection(b *testing.B) {
	j := judge.MustNew(judge.DefaultConfig())
	m := simllm.MustModel(simllm.GPT40613)
	rng := rand.New(rand.NewSource(4))
	cfg := corpus.DefaultConfig()
	cfg.Size = 300
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var probs, gaps []float64
		for k, p := range pool {
			salt := fmt.Sprintf("lc/%d", k)
			respA := m.Respond(p.Text, simllm.Options{Salt: salt + "/a"})
			respB := m.Respond(p.Text, simllm.Options{Salt: salt + "/b"})
			// Pad half of the A responses with content-free filler.
			if rng.Intn(2) == 0 {
				respA += " It is also worth noting additional general remarks of no substance whatsoever repeated at length."
			}
			v := j.Compare(p.Text, respA, respB, salt)
			probs = append(probs, v.ProbA)
			gaps = append(gaps, judge.LengthGap(respA, respB))
		}
		raw := metrics.Mean(probs)
		fit, err := metrics.LinearRegression(gaps, probs)
		if err != nil {
			b.Fatal(err)
		}
		lc := fit.Predict(0)
		if i == 0 {
			printFirst(b, "lc", fmt.Sprintf(
				"LC correction: raw win prob %.3f vs length-controlled %.3f (padding inflates raw, LC removes it)",
				raw, lc))
		}
	}
}

// BenchmarkEndToEndBuild measures the full PAS construction at smoke
// scale: corpus -> curation -> generation -> SFT.
func BenchmarkEndToEndBuild(b *testing.B) {
	opt := evalbench.QuickOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := evalbench.Prepare(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDomainSpecialization runs the §3.3 extension: specialised
// coding PAS vs general PAS on a coding-only benchmark.
func BenchmarkDomainSpecialization(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.DomainStudy(facet.Coding, 40)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "domain", rep.String())
	}
}

// BenchmarkSelfConsistencyVsPAS compares the two ways of buying trap
// accuracy: self-consistency pays k-times inference; PAS pays one short
// complementary prompt. Reported metric: correct-answers per 40 trials.
func BenchmarkSelfConsistencyVsPAS(b *testing.B) {
	art := benchArtifacts(b)
	m := simllm.MustModel(simllm.GPT4Turbo)
	prompt := "A quick trick puzzle for you: heavier a kilogram of steel or a kilogram of feathers. What do you say?"
	tr, ok := facet.FindTrap(prompt)
	if !ok {
		b.Fatal("trap missing")
	}
	const trials = 40
	b.Run("single", func(b *testing.B) {
		var right int
		for i := 0; i < b.N; i++ {
			right = 0
			for k := 0; k < trials; k++ {
				// Same salts as self-consistency's first sample, so the
				// comparison isolates the voting effect.
				if tr.ClaimsRight(m.Respond(prompt, simllm.Options{Salt: fmt.Sprintf("v%d/sc0", k)})) {
					right++
				}
			}
		}
		b.ReportMetric(float64(right), "right/40")
	})
	b.Run("selfconsistency-k5", func(b *testing.B) {
		var right int
		for i := 0; i < b.N; i++ {
			right = 0
			for k := 0; k < trials; k++ {
				out, err := m.SelfConsistent(prompt, 5, simllm.Options{Salt: fmt.Sprintf("v%d", k)})
				if err != nil {
					b.Fatal(err)
				}
				if tr.ClaimsRight(out) {
					right++
				}
			}
		}
		b.ReportMetric(float64(right), "right/40")
	})
	b.Run("pas", func(b *testing.B) {
		ape := art.PASAPE()
		var right int
		for i := 0; i < b.N; i++ {
			right = 0
			for k := 0; k < trials; k++ {
				salt := fmt.Sprintf("p%d", k)
				if tr.ClaimsRight(m.Respond(ape.Transform(prompt, salt), simllm.Options{Salt: salt})) {
					right++
				}
			}
		}
		b.ReportMetric(float64(right), "right/40")
	})
}

// BenchmarkAutoCoTVsPAS compares the per-task Auto-CoT demonstrations
// against task-agnostic PAS on a reasoning workload.
func BenchmarkAutoCoTVsPAS(b *testing.B) {
	art := benchArtifacts(b)
	// Task pool: reasoning/math prompts.
	gen := corpus.DefaultConfig()
	gen.Size = 600
	gen.Seed = 77
	gen.JunkRate = 0
	gen.DuplicateRate = 0
	gen.CategoryBias = 0
	pool, err := corpus.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	var task []string
	for _, p := range pool {
		if p.Truth.Category == facet.Math || p.Truth.Category == facet.Reason {
			task = append(task, p.Text)
		}
	}
	if len(task) < 40 {
		b.Fatalf("task pool too small: %d", len(task))
	}
	auto, err := baselines.NewAutoCoT(task[:20], baselines.DefaultAutoCoTConfig())
	if err != nil {
		b.Fatal(err)
	}
	eval := task[20:60]
	m := simllm.MustModel(simllm.GPT40613)
	j := judge.MustNew(judge.DefaultConfig())
	score := func(ape baselines.APE) float64 {
		var total float64
		for i, p := range eval {
			salt := fmt.Sprintf("ac%d", i)
			resp := m.Respond(ape.Transform(p, salt), simllm.Options{Salt: salt})
			total += j.Score(p, resp)
		}
		return total / float64(len(eval))
	}
	for i := 0; i < b.N; i++ {
		autoScore := score(auto)
		pasScore := score(art.PASAPE())
		noneScore := score(baselines.None{})
		printFirst(b, "autocot", fmt.Sprintf(
			"Auto-CoT vs PAS on reasoning tasks (mean judge score): none %.2f, Auto-CoT %.2f, PAS %.2f",
			noneScore, autoScore, pasScore))
	}
}

// BenchmarkLeaderboard fits a joint Bradley-Terry ranking across
// (model, APE) systems from round-robin judged games — the Chatbot-Arena
// style aggregation underlying Arena-Hard.
func BenchmarkLeaderboard(b *testing.B) {
	art := benchArtifacts(b)
	contenders := []evalbench.Contender{
		{MainModel: simllm.GPT4Turbo, APE: baselines.None{}},
		{MainModel: simllm.GPT4Turbo, APE: art.PASAPE()},
		{MainModel: simllm.GPT40613, APE: baselines.None{}},
		{MainModel: simllm.GPT40613, APE: art.PASAPE()},
		{MainModel: simllm.GPT35Turbo, APE: baselines.None{}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.Leaderboard(contenders)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "leaderboard", rep.String())
	}
}
