package pas

// End-to-end observability: a request entering the proxy with no trace
// context must yield ONE trace spanning both services — proxy root,
// augmentation + serving-core spans, and the upstream LLM's own root
// continuing the same trace id — with that id stamped on both access
// logs. Plus the overhead guard: tracing compiled in but sampled out
// must not slow the cached hot path.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chatapi"
	"repro/internal/httpmw"
	"repro/internal/obs"
	"repro/internal/simllm"
)

// tracedStack is pasllm behind pasproxy, with each service's tracer and
// access log captured for inspection.
type tracedStack struct {
	front       *httptest.Server
	proxyTracer *obs.Tracer
	llmTracer   *obs.Tracer
	proxyLog    *bytes.Buffer
	llmLog      *bytes.Buffer
}

func newTracedStack(t *testing.T) *tracedStack {
	t.Helper()
	st := &tracedStack{
		proxyTracer: obs.NewTracer(obs.TraceConfig{}),
		llmTracer:   obs.NewTracer(obs.TraceConfig{}),
		proxyLog:    &bytes.Buffer{},
		llmLog:      &bytes.Buffer{},
	}

	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(httpmw.Chain(apiServer.Handler(),
		httpmw.RequestID(),
		httpmw.Trace(st.llmTracer, "pasllm"),
		httpmw.Logging(log.New(st.llmLog, "", 0)),
	))
	t.Cleanup(upstream.Close)

	sys := NewSystem(testSystem(t).System.model)
	if err := sys.EnableServing(ServingConfig{
		CacheSize:   64,
		MaxInFlight: 4,
		QueueDepth:  4,
		QueueWait:   time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(sys, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.front = httptest.NewServer(httpmw.Chain(proxy,
		httpmw.RequestID(),
		httpmw.Trace(st.proxyTracer, "pasproxy"),
		httpmw.Logging(log.New(st.proxyLog, "", 0)),
	))
	t.Cleanup(st.front.Close)
	return st
}

func (st *tracedStack) chat(t *testing.T, header string) *http.Response {
	t.Helper()
	body := `{"model":"gpt-4-0613","seed":"obs-e2e","messages":[{"role":"user","content":"Explain how tides form."}]}`
	req, err := http.NewRequest(http.MethodPost, st.front.URL+"/v1/chat/completions", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		req.Header.Set(obs.TraceparentHeader, header)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// spanNames flattens every recent trace with the given id into its span
// name set.
func spanNames(snap obs.TracesSnapshot, traceID string) map[string]bool {
	names := map[string]bool{}
	for _, tr := range snap.Recent {
		if tr.TraceID != traceID {
			continue
		}
		for _, sp := range tr.Spans {
			names[sp.Name] = true
		}
	}
	return names
}

// logTraceIDs extracts the trace_id of each JSON access-log line.
func logTraceIDs(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			TraceID string `json:"trace_id"`
			Status  int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line %q is not JSON: %v", line, err)
		}
		ids = append(ids, rec.TraceID)
	}
	return ids
}

func TestTracePropagatesProxyToUpstream(t *testing.T) {
	st := newTracedStack(t)
	resp := st.chat(t, "") // no inbound trace context: proxy mints the root
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	echoed := resp.Header.Get(obs.TraceparentHeader)
	sc, ok := obs.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	traceID := sc.TraceID.String()

	proxySpans := spanNames(st.proxyTracer.Snapshot(), traceID)
	for _, want := range []string{
		"pasproxy POST /v1/chat/completions",
		"proxy.augment",
		"serving.do",
		"serving.cache_lookup",
		"serving.queue_wait",
		"serving.compute",
	} {
		if !proxySpans[want] {
			t.Errorf("proxy trace %s is missing span %q (have %v)", traceID, want, proxySpans)
		}
	}

	llmSpans := spanNames(st.llmTracer.Snapshot(), traceID)
	for _, want := range []string{
		"pasllm POST /v1/chat/completions",
		"chatllm.generate",
	} {
		if !llmSpans[want] {
			t.Errorf("upstream continued trace %s but is missing span %q (have %v)", traceID, want, llmSpans)
		}
	}

	for name, buf := range map[string]*bytes.Buffer{"proxy": st.proxyLog, "llm": st.llmLog} {
		ids := logTraceIDs(t, buf)
		if len(ids) == 0 {
			t.Fatalf("%s access log is empty", name)
		}
		if ids[len(ids)-1] != traceID {
			t.Errorf("%s access log has trace_id %q, want %q", name, ids[len(ids)-1], traceID)
		}
	}
}

func TestTraceContinuesValidInboundParent(t *testing.T) {
	st := newTracedStack(t)
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp := st.chat(t, inbound)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatal("response traceparent does not parse")
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("proxy minted a new trace %s instead of continuing the inbound one", got)
	}
	if names := spanNames(st.llmTracer.Snapshot(), sc.TraceID.String()); !names["chatllm.generate"] {
		t.Errorf("upstream did not continue the client's trace (spans %v)", names)
	}
}

func TestTraceMalformedParentStartsFreshRoot(t *testing.T) {
	st := newTracedStack(t)
	for _, bad := range []string{
		"not-a-traceparent",
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase is invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
	} {
		resp := st.chat(t, bad)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traceparent %q: status %d", bad, resp.StatusCode)
		}
		sc, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
		if !ok {
			t.Fatalf("traceparent %q: response header does not parse", bad)
		}
		if got := sc.TraceID.String(); strings.Contains(strings.ToLower(bad), got) {
			t.Errorf("malformed traceparent %q was inherited as trace %s", bad, got)
		}
	}
}

// enhanceCachedSystem builds a serving-enabled system with the
// complement for benchPrompt already cached, so every measured
// iteration takes the cache-hit path.
func enhanceCachedSystem(tb testing.TB) (*System, Chatter) {
	tb.Helper()
	sys := NewSystem(testSystem(tb).System.model)
	if err := sys.EnableServing(ServingConfig{CacheSize: 64, MaxInFlight: 4, QueueDepth: 4, QueueWait: time.Second}); err != nil {
		tb.Fatal(err)
	}
	main := simllm.MustModel(simllm.GPT40613)
	if _, err := sys.EnhanceContext(context.Background(), main, benchPrompt, "bench"); err != nil {
		tb.Fatal(err)
	}
	return sys, main
}

const benchPrompt = "Explain how tides form."

// BenchmarkEnhanceCached measures the cache-hit hot path bare and with
// tracing compiled in but sampled out (SampleEvery < 0, the no-op
// exporter): the two must stay within a few percent of each other —
// TestObsOverheadGuard enforces 5%.
func BenchmarkEnhanceCached(b *testing.B) {
	sys, main := enhanceCachedSystem(b)
	run := func(ctx context.Context) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.EnhanceContext(ctx, main, benchPrompt, "bench"); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("baseline", run(context.Background()))

	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: -1})
	tctx, span := tracer.StartSpan(context.Background(), "bench")
	defer span.End()
	b.Run("traced-noop", run(tctx))
}

// TestObsOverheadGuard is the CI guard behind the benchmark above: the
// sampled-out tracer must keep the cached hot path within 5% of the
// uninstrumented baseline. Timing comparisons are noisy, so the guard
// takes the best of a few attempts before failing.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped with -short")
	}
	sys, main := enhanceCachedSystem(t)
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: -1})

	measure := func(ctx context.Context) float64 {
		const iters = 400
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sys.EnhanceContext(ctx, main, benchPrompt, "bench"); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start)) / iters
	}
	measure(context.Background()) // warm up code paths and the cache

	const attempts = 5
	var report []string
	for i := 0; i < attempts; i++ {
		base := measure(context.Background())
		tctx, span := tracer.StartSpan(context.Background(), "guard")
		traced := measure(tctx)
		span.End()
		if traced <= base*1.05 {
			return
		}
		report = append(report, fmt.Sprintf("attempt %d: baseline %.0fns/op, traced %.0fns/op (+%.1f%%)",
			i+1, base, traced, (traced/base-1)*100))
	}
	t.Errorf("sampled-out tracing exceeded the 5%% overhead budget on every attempt:\n%s",
		strings.Join(report, "\n"))
}
