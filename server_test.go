package pas

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serving"
)

// servingSystem builds a fresh System sharing the cached test model,
// with the serving core enabled; tests that mutate serving state must
// not share the System other tests use.
func servingSystem(t *testing.T, cfg ServingConfig) *System {
	t.Helper()
	sys := NewSystem(testSystem(t).System.model)
	if err := sys.EnableServing(cfg); err != nil {
		t.Fatal(err)
	}
	return sys
}

func postAugment(t *testing.T, url, prompt, salt string) AugmentResponse {
	t.Helper()
	body, _ := json.Marshal(AugmentRequest{Prompt: prompt, Salt: salt})
	resp, err := http.Post(url+"/v1/augment", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("augment status = %d", resp.StatusCode)
	}
	var out AugmentResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServedAugmentMatchesDirectAndCaches: the served hot path must be
// semantically identical to calling Complement directly, and repeated
// prompts must be served from cache.
func TestServedAugmentMatchesDirectAndCaches(t *testing.T) {
	sys := servingSystem(t, ServingConfig{})
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()

	first := postAugment(t, srv.URL, "Explain how tides form.", "s1")
	second := postAugment(t, srv.URL, "Explain how tides form.", "s1")
	if first != second {
		t.Fatalf("cached response diverged: %+v vs %+v", first, second)
	}
	if want := sys.Complement("Explain how tides form.", "s1"); first.Complement != want {
		t.Fatalf("served complement %q != direct %q", first.Complement, want)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var stats serving.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.Completed != 2 {
		t.Fatalf("stats = %+v, want 2 requests completed", stats)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.CacheHitRatio != 0.5 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", stats)
	}
	if stats.LatencyP99Ms < stats.LatencyP50Ms {
		t.Fatalf("latency quantiles inconsistent: %+v", stats)
	}
}

// TestStatsWithoutServingCore: a system without EnableServing reports
// the core as absent rather than all-zero counters.
func TestStatsWithoutServingCore(t *testing.T) {
	sys := NewSystem(testSystem(t).System.model)
	rec := httptest.NewRecorder()
	sys.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("stats without core: status = %d, want 404", rec.Code)
	}
}

// TestAugmentShedsDisconnectedClient: a request whose client context
// already ended is answered 503 without computing.
func TestAugmentShedsDisconnectedClient(t *testing.T) {
	sys := servingSystem(t, ServingConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(AugmentRequest{Prompt: "p"})
	req := httptest.NewRequest("POST", "/v1/augment", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	sys.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
}

// TestWriteOverloadedSetsRetryAfter: shed errors carry Retry-After;
// client-side errors do not invite a retry.
func TestWriteOverloadedSetsRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	sys := new(System) // no core: the hint falls back to the constant 1
	sys.writeOverloaded(rec, serving.ErrQueueFull)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("queue-full: code %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	rec = httptest.NewRecorder()
	sys.writeOverloaded(rec, context.Canceled)
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("client cancellation should not invite a retry")
	}
}

// TestContextVariantsWithoutCore: ComplementContext/AugmentContext on a
// plain system are the direct methods and never fail.
func TestContextVariantsWithoutCore(t *testing.T) {
	sys := testSystem(t).System
	ctx := context.Background()
	c, err := sys.ComplementContext(ctx, "Explain how tides form.", "s")
	if err != nil {
		t.Fatal(err)
	}
	if want := sys.Complement("Explain how tides form.", "s"); c != want {
		t.Fatalf("ComplementContext %q != Complement %q", c, want)
	}
	a, err := sys.AugmentContext(ctx, "Explain how tides form.", "s")
	if err != nil {
		t.Fatal(err)
	}
	if want := sys.Augment("Explain how tides form.", "s"); a != want {
		t.Fatalf("AugmentContext %q != Augment %q", a, want)
	}
}

// TestServeContextShutsDownCleanly: cancelling the context drains the
// server and returns nil instead of killing the process mid-request.
func TestServeContextShutsDownCleanly(t *testing.T) {
	sys := testSystem(t).System
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sys.ServeContext(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond) // let ListenAndServe start
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not return after cancel")
	}
}
