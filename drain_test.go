package pas

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// drainFixture is one replica-shaped System behind a real listener.
func drainFixture(t *testing.T) (*System, *httptest.Server) {
	t.Helper()
	sys := NewSystem(testSystem(t).System.model)
	if err := sys.EnableServing(ServingConfig{CacheSize: 64}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Handler())
	t.Cleanup(srv.Close)
	return sys, srv
}

func getStatus(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status answered %d, want 200 (draining must stay 2xx)", resp.StatusCode)
	}
	var wire struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	return wire.Status
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDrainEndpointFlipsStatusAndSheds: POST /v1/drain flips /v1/status
// to draining (still 200), new augmentations shed 503 + Retry-After
// without degrading, cached augmentations keep answering, and Quiesce
// returns once idle.
func TestDrainEndpointFlipsStatusAndSheds(t *testing.T) {
	sys, srv := drainFixture(t)
	exits := 0
	sys.OnDrain(func() { exits++ })

	if got := getStatus(t, srv.URL); got != "ok" {
		t.Fatalf("status before drain = %q, want ok", got)
	}
	// Warm one key so the hit path is observable during drain.
	warm := postJSON(t, srv.URL+"/v1/augment", `{"prompt":"keep me warm"}`, nil)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warming request answered %d", warm.StatusCode)
	}

	resp := postJSON(t, srv.URL+"/v1/drain", `{"exit": false}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain answered %d", resp.StatusCode)
	}
	var dr struct {
		Status  string `json:"status"`
		Exiting bool   `json:"exiting"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Status != "draining" || dr.Exiting {
		t.Fatalf("drain reply = %+v, want draining and not exiting", dr)
	}
	if exits != 0 {
		t.Fatal("exit hook fired despite {\"exit\": false}")
	}
	if got := getStatus(t, srv.URL); got != "draining" {
		t.Fatalf("status after drain = %q, want draining", got)
	}

	// New work sheds 503 + Retry-After — not a degraded 200: the 503 is
	// what moves the router off this replica.
	shed := postJSON(t, srv.URL+"/v1/augment", `{"prompt":"fresh work"}`, nil)
	defer shed.Body.Close()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new work during drain answered %d, want 503", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After")
	}
	if shed.Header.Get("X-PAS-Degraded") == "1" {
		t.Fatal("drain shed must not be served fail-open")
	}

	// Already-warmed traffic keeps answering.
	hit := postJSON(t, srv.URL+"/v1/augment", `{"prompt":"keep me warm"}`, nil)
	defer hit.Body.Close()
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("cache hit during drain answered %d, want 200", hit.StatusCode)
	}

	// Idempotent; a second drain reports already_draining.
	again := postJSON(t, srv.URL+"/v1/drain", `{"exit": false}`, nil)
	defer again.Body.Close()
	var dr2 struct {
		AlreadyDraining bool `json:"already_draining"`
	}
	if err := json.NewDecoder(again.Body).Decode(&dr2); err != nil {
		t.Fatal(err)
	}
	if !dr2.AlreadyDraining {
		t.Fatal("second drain did not report already_draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := sys.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce on an idle drained system: %v", err)
	}
	if stats := sys.core.Stats(); !stats.Draining || stats.ShedDraining == 0 {
		t.Fatalf("core stats after drain: draining %v shed_draining %d", stats.Draining, stats.ShedDraining)
	}
}

// TestDrainAdminTokenAndExitHook: a configured token gates the
// endpoint; a default (empty-body) drain fires the exit hook exactly
// once.
func TestDrainAdminTokenAndExitHook(t *testing.T) {
	sys, srv := drainFixture(t)
	sys.SetAdminToken("s3cret")
	exits := make(chan struct{}, 4)
	sys.OnDrain(func() { exits <- struct{}{} })

	for name, hdr := range map[string]map[string]string{
		"no token":    nil,
		"wrong token": {"X-PAS-Admin-Token": "nope"},
	} {
		resp := postJSON(t, srv.URL+"/v1/drain", "", hdr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s: drain answered %d, want 403", name, resp.StatusCode)
		}
	}
	if sys.Draining() {
		t.Fatal("unauthorized request drained the system")
	}

	// Bearer form works too, and the empty body means drain-and-exit.
	resp := postJSON(t, srv.URL+"/v1/drain", "", map[string]string{"Authorization": "Bearer s3cret"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := new(bytes.Buffer)
		_, _ = b.ReadFrom(resp.Body)
		t.Fatalf("authorized drain answered %d: %s", resp.StatusCode, b)
	}
	var dr struct {
		Exiting bool `json:"exiting"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Exiting {
		t.Fatal("default drain did not request exit")
	}
	if !sys.Draining() {
		t.Fatal("authorized drain did not drain")
	}

	// The exit hook fires once, even across repeated exit drains.
	second := postJSON(t, srv.URL+"/v1/drain", `{"exit": true}`, map[string]string{"X-PAS-Admin-Token": "s3cret"})
	second.Body.Close()
	select {
	case <-exits:
	case <-time.After(2 * time.Second):
		t.Fatal("exit hook never fired")
	}
	select {
	case <-exits:
		t.Fatal("exit hook fired more than once")
	case <-time.After(50 * time.Millisecond):
	}
}
