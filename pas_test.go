package pas

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/facet"
	"repro/internal/simllm"
)

// buildOnce builds a small PAS system once for the whole test package;
// the end-to-end build is the expensive part.
var (
	buildMu  sync.Mutex
	built    *BuildResult
	buildErr error
)

func testSystem(t testing.TB) *BuildResult {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if built == nil && buildErr == nil {
		cfg := DefaultConfig()
		cfg.CorpusSize = 3000
		cfg.ClassifierExamples = 2000
		cfg.Augment.PerCategoryCap = 80
		cfg.Augment.HeavyCategoryCap = 160
		built, buildErr = Build(cfg)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return built
}

func TestBuildValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CorpusSize = 0
	if _, err := Build(cfg); err == nil {
		t.Error("zero corpus should fail")
	}
	cfg = DefaultConfig()
	cfg.ClassifierExamples = 0
	if _, err := Build(cfg); err == nil {
		t.Error("zero classifier examples should fail")
	}
	cfg = DefaultConfig()
	cfg.BaseModel = "nope"
	if _, err := Build(cfg); err == nil {
		t.Error("unknown base model should fail")
	}
}

func TestBuildProducesWorkingSystem(t *testing.T) {
	res := testSystem(t)
	if res.Dataset.Len() == 0 {
		t.Fatal("no dataset generated")
	}
	if res.CurationStats.AfterFilter == 0 {
		t.Fatal("curation kept nothing")
	}
	if res.AugmentStats.Generated == 0 {
		t.Fatal("no generations")
	}
	if res.System.BaseModel() != simllm.Qwen27B {
		t.Fatalf("base = %s", res.System.BaseModel())
	}

	prompt := "Explain how photosynthesis works."
	c := res.System.Complement(prompt, "t")
	if facet.DetectDirectives(c).Len() == 0 {
		t.Fatalf("complement has no directives: %q", c)
	}
	aug := res.System.Augment(prompt, "t")
	if !strings.HasPrefix(aug, prompt) {
		t.Fatal("augmentation must preserve the original prompt as prefix")
	}
	if aug == prompt {
		t.Fatal("augmentation added nothing")
	}
}

func TestSystemImplementsAPE(t *testing.T) {
	res := testSystem(t)
	if res.System.Name() != "PAS" {
		t.Fatal("name")
	}
	p := "Solve x^2 - 5x + 6 = 0."
	if res.System.Transform(p, "s") != res.System.Augment(p, "s") {
		t.Fatal("Transform must equal Augment")
	}
}

func TestEnhanceRunsDownstreamModel(t *testing.T) {
	res := testSystem(t)
	main := simllm.MustModel(simllm.GPT40613)
	out, err := res.System.Enhance(main, "Give me advice on keeping houseplants alive.", "e")
	if err != nil {
		t.Fatal(err)
	}
	if out.Complement == "" || out.Response == "" {
		t.Fatalf("incomplete enhancement: %+v", out)
	}
	if _, err := res.System.Enhance(nil, "x", "e"); err == nil {
		t.Fatal("nil downstream model should fail")
	}
}

func TestSaveLoadSystem(t *testing.T) {
	res := testSystem(t)
	path := filepath.Join(t.TempDir(), "pas-model.json")
	if err := res.System.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	p := "Write a python function that implements a trie."
	if loaded.Complement(p, "x") != res.System.Complement(p, "x") {
		t.Fatal("loaded system behaves differently")
	}
	if _, err := LoadSystem(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing model file should fail")
	}
}

func TestHTTPService(t *testing.T) {
	res := testSystem(t)
	srv := httptest.NewServer(res.System.Handler())
	defer srv.Close()

	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !client.Healthy() {
		t.Fatal("health check failed")
	}
	out, err := client.Augment("Explain the science of fermentation.", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if out.Complement == "" {
		t.Fatal("empty complement over HTTP")
	}
	if !strings.HasPrefix(out.Augmented, "Explain the science of fermentation.") {
		t.Fatalf("augmented = %q", out.Augmented)
	}
	if out.Model != simllm.Qwen27B {
		t.Fatalf("model = %q", out.Model)
	}

	// Same salt must be reproducible across HTTP.
	again, err := client.Augment("Explain the science of fermentation.", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if again.Complement != out.Complement {
		t.Fatal("service not deterministic for fixed salt")
	}
}

func TestHTTPServiceErrors(t *testing.T) {
	res := testSystem(t)
	srv := httptest.NewServer(res.System.Handler())
	defer srv.Close()
	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Augment("", "s"); err == nil {
		t.Error("empty prompt should be rejected")
	}
	if !strings.Contains(fmt.Sprint(err), "") { // keep err used
		t.Log(err)
	}
	// Wrong method.
	resp, err := srv.Client().Get(srv.URL + "/v1/augment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(""); err == nil {
		t.Error("empty URL should fail")
	}
	if _, err := NewClient("/"); err == nil {
		t.Error("bare slash should fail")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client, err := NewClient("http://127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	if client.Healthy() {
		t.Error("dead server reported healthy")
	}
	if _, err := client.Augment("p", "s"); err == nil {
		t.Error("dead server should fail")
	}
}

// TestDatasetMostlyClean asserts the headline §3.2 property on the real
// built dataset: residual defects are rare after selection+regeneration.
func TestDatasetMostlyClean(t *testing.T) {
	res := testSystem(t)
	frac := float64(res.AugmentStats.ResidualDefects) / float64(res.Dataset.Len())
	if frac > 0.10 {
		t.Fatalf("residual defect fraction = %.3f, want <= 0.10", frac)
	}
}

func TestAugmentMessagesTouchesOnlyLastUserTurn(t *testing.T) {
	res := testSystem(t)
	conv := []simllm.Message{
		{Role: "system", Content: "Be helpful."},
		{Role: "user", Content: "Explain how tides form."},
		{Role: "assistant", Content: "Tides come from gravity."},
		{Role: "user", Content: "Now explain the science of fermentation."},
	}
	out, err := res.System.AugmentMessages(conv, "conv")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(conv) {
		t.Fatalf("turn count changed: %d", len(out))
	}
	for i := 0; i < 3; i++ {
		if out[i] != conv[i] {
			t.Errorf("turn %d modified: %+v", i, out[i])
		}
	}
	if !strings.HasPrefix(out[3].Content, conv[3].Content) {
		t.Fatal("final user turn must keep the original prompt as prefix")
	}
	if out[3].Content == conv[3].Content {
		t.Fatal("final user turn not augmented")
	}
	// The input conversation must not be mutated.
	if conv[3].Content != "Now explain the science of fermentation." {
		t.Fatal("input slice mutated")
	}
}

func TestAugmentMessagesRequiresUserTurn(t *testing.T) {
	res := testSystem(t)
	if _, err := res.System.AugmentMessages([]simllm.Message{
		{Role: "system", Content: "x"},
		{Role: "assistant", Content: "y"},
	}, "s"); err == nil {
		t.Fatal("no user turn should fail")
	}
	if _, err := res.System.AugmentMessages(nil, "s"); err == nil {
		t.Fatal("empty conversation should fail")
	}
}
